package core

import (
	"sync/atomic"
)

// The write plane of the snapshot architecture (see snapshot.go for the
// read plane). Inserted vectors live in an overlay outside the immutable
// base structures:
//
//   - the active memtable receives inserts until it reaches its capacity
//     (Options.MemtableThreshold), at which point it is sealed into a
//     frozen segment and a fresh memtable is started;
//   - frozen segments are fully immutable: plain bucket maps, read without
//     any synchronization;
//   - tombstones is an atomic bitset over the dense id space, shared
//     between the writer (bit sets under the index mutex) and lock-free
//     readers (atomic bit tests).
//
// The memtable is the only overlay structure that is read while being
// written. It is safe for one writer (serialized by Index.mu) and any
// number of lock-free readers:
//
//   - rows and groupOf are fixed-capacity arrays; slot n is fully written
//     before the id referencing it is published, and the published row
//     count n is an atomic whose Store/Load pair orders those writes;
//   - buckets is a fixed-capacity open-addressing table whose slots hold
//     immutable entries behind atomic pointers; appending an id replaces
//     the whole entry (copy-on-write), so a reader observes either the old
//     or the new version, never a partial write. A probe on the reader
//     side costs a hash over the key bytes and a few atomic loads — no
//     locks and no allocation (unlike a sync.Map, whose interface keys
//     force a string allocation per lookup).

// vecRow is one overlay vector.
type vecRow []float32

// overlayKeyPrefix is the byte length of the (group, table) prefix that
// namespaces lattice keys in the shared overlay bucket maps.
const overlayKeyPrefix = 4

// appendOverlayKey starts a composed overlay bucket key: 3 bytes of group
// id plus 1 byte of table index (Options.fill bounds L ≤ 255). The caller
// appends the lattice key bytes.
func appendOverlayKey(dst []byte, gi, t int) []byte {
	return append(dst, byte(gi), byte(gi>>8), byte(gi>>16), byte(t))
}

// bucketEntry is one immutable (key, ids) pair; appends replace the entry.
type bucketEntry struct {
	key string
	ids []int32 // insertion order
}

// bucketMap is the memtable's composed-key index: open addressing with
// linear probing over atomic entry pointers. It is sized so it can never
// fill (at most capacity×L distinct keys are inserted into a table of at
// least twice as many slots) and entries are only ever added or replaced,
// never removed, so readers need no synchronization beyond the slot load.
type bucketMap struct {
	mask  uint32
	slots []atomic.Pointer[bucketEntry]
}

func newBucketMap(maxKeys int) bucketMap {
	n := 8
	for n < 2*maxKeys {
		n <<= 1
	}
	return bucketMap{mask: uint32(n - 1), slots: make([]atomic.Pointer[bucketEntry], n)}
}

// bucketHash is FNV-1a over the composed key bytes.
func bucketHash(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// memtable is the active, bounded insert buffer.
type memtable struct {
	idBase  int      // id of row 0; rows are dense from here
	rows    []vecRow // fixed capacity; slots [0, n) are readable
	groupOf []int32  // level-1 group of each row
	n       atomic.Int32
	buckets bucketMap // composed key -> ids, insertion order per key
}

// newMemtable allocates a memtable for capacity rows inserting into up to
// tables bucket keys each.
func newMemtable(idBase, capacity, tables int) *memtable {
	return &memtable{
		idBase:  idBase,
		rows:    make([]vecRow, capacity),
		groupOf: make([]int32, capacity),
		buckets: newBucketMap(capacity * tables),
	}
}

func (m *memtable) cap() int { return len(m.rows) }

func (m *memtable) len() int {
	if m == nil {
		return 0
	}
	return int(m.n.Load())
}

func (m *memtable) full() bool { return m.len() == m.cap() }

// bucket returns the ids sharing a composed key, or nil. Lock-free and
// allocation-free: a hash, a linear probe, and a byte comparison.
func (m *memtable) bucket(key []byte) []int32 {
	b := &m.buckets
	for i := bucketHash(key) & b.mask; ; i = (i + 1) & b.mask {
		e := b.slots[i].Load()
		if e == nil {
			return nil
		}
		if e.key == string(key) { // alloc-free comparison
			return e.ids
		}
	}
}

// addToBucket appends id to a bucket by replacing the bucket's entry
// (copy-on-write, so concurrent readers never see a partial append).
// Caller holds the index write mutex.
func (m *memtable) addToBucket(key []byte, id int32) {
	b := &m.buckets
	for i := bucketHash(key) & b.mask; ; i = (i + 1) & b.mask {
		e := b.slots[i].Load()
		if e == nil {
			b.slots[i].Store(&bucketEntry{key: string(key), ids: []int32{id}})
			return
		}
		if e.key == string(key) {
			ids := make([]int32, len(e.ids)+1)
			copy(ids, e.ids)
			ids[len(e.ids)] = id
			b.slots[i].Store(&bucketEntry{key: e.key, ids: ids})
			return
		}
	}
}

// freeze converts the memtable's current contents into an immutable
// segment. The bucket slices are shared (they are never mutated again: the
// writer moves on to a fresh memtable). Caller holds the write mutex.
func (m *memtable) freeze() *segment {
	n := m.len()
	seg := &segment{
		idBase:  m.idBase,
		rows:    m.rows[:n:n],
		groupOf: m.groupOf[:n:n],
		buckets: make(map[string][]int32),
	}
	for i := range m.buckets.slots {
		if e := m.buckets.slots[i].Load(); e != nil {
			seg.buckets[e.key] = e.ids
		}
	}
	return seg
}

// shifted returns a copy of the memtable with every id offset by delta
// (the Compact id remap). Row storage is shared — vectors do not move and
// readers of the pre-compact snapshot only ever touch slots below their
// published count — but the bucket map is rebuilt because the ids in it
// change. Caller holds the write mutex.
func (m *memtable) shifted(delta int) *memtable {
	out := &memtable{
		idBase:  m.idBase + delta,
		rows:    m.rows,
		groupOf: m.groupOf,
		buckets: newBucketMap(len(m.buckets.slots) / 2),
	}
	out.n.Store(m.n.Load())
	// Same table size and slot-by-slot copy: the probe layout is preserved.
	for i := range m.buckets.slots {
		if e := m.buckets.slots[i].Load(); e != nil {
			out.buckets.slots[i].Store(&bucketEntry{key: e.key, ids: shiftIDs(e.ids, delta)})
		}
	}
	return out
}

// segment is a sealed, immutable overlay segment.
type segment struct {
	idBase  int
	rows    []vecRow
	groupOf []int32
	buckets map[string][]int32
}

// shifted returns a copy with every id offset by delta (rows shared).
func (seg *segment) shifted(delta int) *segment {
	out := &segment{
		idBase:  seg.idBase + delta,
		rows:    seg.rows,
		groupOf: seg.groupOf,
		buckets: make(map[string][]int32, len(seg.buckets)),
	}
	for k, ids := range seg.buckets {
		out.buckets[k] = shiftIDs(ids, delta)
	}
	return out
}

func shiftIDs(ids []int32, delta int) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = id + int32(delta)
	}
	return out
}

// tombstones is a fixed-capacity atomic bitset over the dense id space,
// plus a live count of set bits. Bits are set by writers holding the index
// mutex and tested lock-free by readers.
type tombstones struct {
	bits []uint32
	dead atomic.Int64
}

func newTombstones(capacity int) *tombstones {
	return &tombstones{bits: make([]uint32, (capacity+31)/32)}
}

func (ts *tombstones) count() int {
	if ts == nil {
		return 0
	}
	return int(ts.dead.Load())
}

// get reports whether id is tombstoned. Safe for concurrent use.
func (ts *tombstones) get(id int) bool {
	if ts == nil {
		return false
	}
	w := id >> 5
	if w >= len(ts.bits) {
		return false
	}
	return atomic.LoadUint32(&ts.bits[w])>>(uint(id)&31)&1 == 1
}

// set tombstones id. Caller holds the write mutex (single writer); the
// store is atomic only so lock-free readers can observe it.
func (ts *tombstones) set(id int) {
	w := id >> 5
	atomic.StoreUint32(&ts.bits[w], atomic.LoadUint32(&ts.bits[w])|1<<(uint(id)&31))
	ts.dead.Add(1)
}

// grown returns a tombstone set with at least capacity bits, carrying over
// every set bit and the live count. Caller holds the write mutex; the old
// set stays valid for readers of older snapshots.
func (ts *tombstones) grown(capacity int) *tombstones {
	out := newTombstones(capacity)
	if ts != nil {
		copy(out.bits, ts.bits)
		out.dead.Store(ts.dead.Load())
	}
	return out
}
