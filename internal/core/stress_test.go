package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// TestConcurrentMixedWorkload drives queries, inserts, deletes and
// compactions from concurrent goroutines against one index. Run under
// `go test -race` (make race / CI) it is the safety net for the snapshot
// protocol; its own assertions pin the semantics:
//
//   - the snapshot epoch observed by any single goroutine is monotone;
//   - query results never contain out-of-range ids;
//   - no live row is lost: after the dust settles,
//     Len() == initial + inserts − successful deletes, and a final Compact
//     folds everything into a base of exactly that size.
//
// The memtable threshold is tiny so seals and auto-compactions fire
// constantly, maximizing snapshot churn.
func TestConcurrentMixedWorkload(t *testing.T) {
	data := testData(t, 300, 12, 61)
	opts := Options{
		Partitioner:         PartitionRPTree,
		Groups:              4,
		Params:              lshfunc.Params{M: 4, L: 3, W: 4},
		MemtableThreshold:   16,
		AutoCompactSegments: 3,
	}
	ix, err := Build(data, opts, xrand.New(62))
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers      = 4
		writers      = 2
		deleters     = 2
		opsPerWorker = 250
	)
	var (
		wg        sync.WaitGroup
		inserts   atomic.Int64
		deletes   atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value // string
	)
	fail := func(msg string) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, msg)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			lastEpoch := uint64(0)
			for i := 0; i < opsPerWorker; i++ {
				e := ix.Epoch()
				if e < lastEpoch {
					fail("epoch went backwards")
					return
				}
				lastEpoch = e
				q := data.Row(rng.Intn(data.N))
				res, _ := ix.Query(q, 5)
				for _, id := range res.IDs {
					if id < 0 {
						fail("negative id in query result")
						return
					}
				}
			}
		}(int64(100 + r))
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < opsPerWorker; i++ {
				v := vec.Clone(data.Row(rng.Intn(data.N)))
				v[0] += float32(rng.Float64()) * 0.01
				if _, err := ix.Insert(v); err != nil {
					fail("insert failed: " + err.Error())
					return
				}
				inserts.Add(1)
			}
		}(int64(200 + w))
	}

	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < opsPerWorker; i++ {
				// Ids are unstable across compactions, so this deletes
				// "whatever currently holds this slot" — the accounting
				// below only relies on each success killing one live row.
				if ix.Delete(rng.Intn(data.N)) {
					deletes.Add(1)
				}
			}
		}(int64(300 + d))
	}

	// A dedicated compactor on top of the auto-compactions; busy is fine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := ix.Compact(); err != nil && !errors.Is(err, ErrCompactBusy) {
				fail("compact failed: " + err.Error())
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d worker failures; first: %s", failures.Load(), firstFail.Load())
	}

	wantLive := int64(data.N) + inserts.Load() - deletes.Load()
	if got := int64(ix.Len()); got != wantLive {
		t.Fatalf("Len = %d, want %d (%d inserts, %d deletes)",
			got, wantLive, inserts.Load(), deletes.Load())
	}

	// Fold everything; an async auto-compaction may still be running, so
	// retry on busy.
	for {
		if _, err := ix.Compact(); err == nil {
			break
		} else if !errors.Is(err, ErrCompactBusy) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if int64(ix.Len()) != wantLive || int64(ix.N()) != wantLive {
		t.Fatalf("after final Compact Len=%d N=%d want %d", ix.Len(), ix.N(), wantLive)
	}
	if ix.Epoch() < 2 {
		t.Fatalf("epoch = %d; snapshots were never republished", ix.Epoch())
	}
}
