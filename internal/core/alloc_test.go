package core

import (
	"testing"

	"bilsh/internal/lattice"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// allocIndex builds a small fixed-seed index for allocation pinning.
func allocIndex(t *testing.T, mode ProbeMode) (*Index, *vec.Matrix) {
	t.Helper()
	rng := xrand.New(3)
	const n, d = 600, 16
	data := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		copy(data.Row(i), rng.GaussianVec(d))
	}
	qs := vec.NewMatrix(32, d)
	for i := 0; i < qs.N; i++ {
		copy(qs.Row(i), data.Row(rng.Intn(n)))
	}
	ix, err := Build(data, Options{
		Partitioner: PartitionRPTree,
		Groups:      4,
		ProbeMode:   mode,
		Probes:      8,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return ix, qs
}

// TestQueryAllocs pins the steady-state allocation count of Query: after
// warm-up, each call may allocate only the returned result slices (IDs and
// Dists), for every probe mode.
func TestQueryAllocs(t *testing.T) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, qs := allocIndex(t, mode)
			// Warm the pool and grow every scratch buffer to its high-water
			// mark. Use one pinned scratch so a GC clearing the pool between
			// runs cannot charge a re-allocation to the measurement.
			s := ix.getScratch()
			for i := 0; i < qs.N; i++ {
				ix.query(qs.Row(i), 5, s)
			}
			qi := 0
			got := testing.AllocsPerRun(200, func() {
				ix.query(qs.Row(qi%qs.N), 5, s)
				qi++
			})
			// knn.Result's IDs and Dists are the only permitted allocations.
			if got > 2 {
				t.Fatalf("Query allocates %.1f/op in steady state, want <= 2 (result slices only)", got)
			}
		})
	}
}

// TestCandidateListAllocs pins CandidateList to the returned id slice plus
// the pool round-trip.
func TestCandidateListAllocs(t *testing.T) {
	ix, qs := allocIndex(t, ProbeSingle)
	for i := 0; i < qs.N; i++ {
		ix.CandidateList(qs.Row(i))
	}
	qi := 0
	got := testing.AllocsPerRun(200, func() {
		ix.CandidateList(qs.Row(qi % qs.N))
		qi++
	})
	if got > 2 {
		t.Fatalf("CandidateList allocates %.1f/op in steady state, want <= 2", got)
	}
}

// TestAppendKeyAllocs pins lattice.AppendKey to zero allocations once the
// destination buffer has capacity.
func TestAppendKeyAllocs(t *testing.T) {
	code := []int32{-3, 1, 0, 7, 2147483647, -2147483648}
	dst := make([]byte, 0, 4*len(code))
	got := testing.AllocsPerRun(200, func() {
		dst = lattice.AppendKey(dst[:0], code)
	})
	if got != 0 {
		t.Fatalf("AppendKey allocates %.1f/op with preallocated dst, want 0", got)
	}
	if string(dst) != lattice.Key(code) {
		t.Fatalf("AppendKey image differs from Key")
	}
}
