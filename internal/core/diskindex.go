package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"bilsh/internal/durable"
	"bilsh/internal/mmap"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

// Disk-backed index — the out-of-core mode the paper names as future work
// ("we also need to design efficient out-of-core algorithms to handle very
// large datasets").
//
// Writers emit the paged v3 layout (see disklayout.go): page-aligned
// CRC-protected sections that the reader maps into the address space, so
// a serving index holds memory proportional to what queries actually
// touch, not to the N×D payload. Two legacy layouts still open and query
// byte-identically to how they did when written:
//
//	v1/v2 "bilsh.Disk/1|2": wire metadata decoded to heap, float32 rows
//	in a fixed-stride section fetched with ReadAt per shortlist row.
//
// Version sniffing happens on the first 16 bytes, so OpenDisk handles any
// generation of file transparently.
const diskMagicLen = 16

var (
	diskMagicV1 = [diskMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'D', 'i', 's', 'k', '/', '1'}
	diskMagic   = [diskMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'D', 'i', 's', 'k', '/', '2'}
)

// diskSource captures the clean snapshot fields the v3 writer needs.
func (sn *snapshot) diskSource(opts Options) *diskV3Source {
	return &diskV3Source{
		opts:   opts,
		n:      sn.data.N,
		d:      sn.data.D,
		quant:  sn.quant,
		tree:   sn.tree,
		km:     sn.km,
		groups: sn.groups,
		rows: func(w io.Writer) error {
			payload := make([]byte, 4*sn.data.D)
			for i := 0; i < sn.data.N; i++ {
				row := sn.data.Row(i)
				for j, v := range row {
					binary.LittleEndian.PutUint32(payload[4*j:], math.Float32bits(v))
				}
				if _, err := w.Write(payload); err != nil {
					return fmt.Errorf("core: writing row %d: %w", i, err)
				}
			}
			return nil
		},
	}
}

// WriteDiskTo serializes the index in the paged disk layout (v3). The
// writer must support seeking (an *os.File does): section offsets and
// CRCs are back-patched into the header once the sections are streamed.
// It returns the total bytes written.
func (ix *Index) WriteDiskTo(f io.WriteSeeker) (int64, error) {
	if ix.opts.Metric == MetricHamming {
		// The paged layout keeps float rows on disk and scans them through
		// the pager; the Hamming plane ranks resident packed sketches
		// instead. Use WriteTo/ReadIndex (wire v4) for Hamming indexes.
		return 0, fmt.Errorf("core: Hamming indexes do not support the paged disk layout; use WriteTo")
	}
	sn := ix.loadSnap()
	if err := sn.requireClean(); err != nil {
		return 0, err
	}
	if sn.fetch != nil {
		return 0, fmt.Errorf("core: cannot re-serialize a disk-backed index; Compact materializes it first")
	}
	return writeDiskV3(f, sn.diskSource(ix.opts))
}

// writeDiskV2To emits the legacy v2 fixed-stride layout. Kept (unexported)
// so the backward-compatibility tests can mint real v2 files and pin that
// they keep opening and querying byte-identically.
func (ix *Index) writeDiskV2To(f io.WriteSeeker) (int64, error) {
	sn := ix.loadSnap()
	if err := sn.requireClean(); err != nil {
		return 0, err
	}
	if sn.fetch != nil {
		return 0, fmt.Errorf("core: cannot re-serialize a disk-backed index; Compact materializes it first")
	}
	var header [diskMagicLen + 8]byte
	copy(header[:], diskMagic[:])
	if _, err := f.Write(header[:]); err != nil {
		return 0, err
	}

	meta := wire.NewWriter(f)
	writeOptions(meta, ix.opts)
	meta.Int(sn.data.N)
	meta.Int(sn.data.D)
	writeQuant(meta, sn.quant)
	writeStructure(meta, sn.tree, sn.km, sn.groups)
	if err := meta.Flush(); err != nil {
		return 0, err
	}
	dataOffset, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}

	payload := make([]byte, 4*sn.data.D)
	for i := 0; i < sn.data.N; i++ {
		row := sn.data.Row(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(payload[4*j:], math.Float32bits(v))
		}
		if _, err := f.Write(payload); err != nil {
			return 0, fmt.Errorf("core: writing row %d: %w", i, err)
		}
	}
	end, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}

	binary.LittleEndian.PutUint64(header[diskMagicLen:], uint64(dataOffset))
	if _, err := f.Seek(diskMagicLen, io.SeekStart); err != nil {
		return 0, err
	}
	if _, err := f.Write(header[diskMagicLen:]); err != nil {
		return 0, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		return 0, err
	}
	return end, nil
}

// SaveDisk writes the disk-backed layout to path atomically: the bytes
// stream to path+".tmp", which is fsynced and renamed over path, so a
// crash mid-save never leaves a truncated index behind and any previous
// file at path stays intact until the new one is complete. The rename
// also means an index currently serving from the old file keeps its
// mapping — the old inode lives until the last open handle drops.
func (ix *Index) SaveDisk(path string) error {
	return durable.AtomicWrite(path, func(f *os.File) error {
		_, err := ix.WriteDiskTo(f)
		return err
	})
}

// DiskIndex is a queryable index whose vector rows live on disk. It
// supports the full reader API (Query, QueryBatch, QueryBatchParallel,
// ExactKNN); dynamic inserts work (new rows live in memory) and Compact
// materializes the whole index back into memory. For v3 files the index
// is served straight off the mapping — see docs/outofcore.md.
type DiskIndex struct {
	*Index
	f       *os.File
	mapping *mmap.Mapping // non-nil for mapped v3 files
	res     *residency    // non-nil when mapping is
}

// OpenDisk opens a disk index with default options (v3 files map with
// the default residency policy; v1/v2 files use the ReadAt fetch path).
func OpenDisk(path string) (*DiskIndex, error) {
	return OpenDiskWith(path, DiskOpenOptions{Residency: ResidencyPolicy{PinCodes: true}})
}

// OpenDiskWith opens a disk index with explicit open options. The
// options only affect v3 paged files; legacy v1/v2 files always use the
// per-row ReadAt path.
func OpenDiskWith(path string, o DiskOpenOptions) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	di, err := openDisk(f, o)
	if err != nil {
		f.Close()
		return nil, err
	}
	return di, nil
}

func openDisk(f *os.File, opts DiskOpenOptions) (*DiskIndex, error) {
	var magic [diskMagicLen]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("core: reading disk index header: %w", err)
	}
	if bytes.Equal(magic[:], diskMagicV3[:]) {
		ix, m, res, err := openDiskV3(f, 0, opts)
		if err != nil {
			return nil, err
		}
		return &DiskIndex{Index: ix, f: f, mapping: m, res: res}, nil
	}
	return openDiskLegacy(f, magic)
}

// openDiskLegacy handles v1/v2 fixed-stride files via the ReadAt fetch
// closure.
func openDiskLegacy(f *os.File, magic [diskMagicLen]byte) (*DiskIndex, error) {
	var version int
	switch {
	case bytes.Equal(magic[:], diskMagic[:]):
		version = 2
	case bytes.Equal(magic[:], diskMagicV1[:]):
		version = 1
	default:
		return nil, fmt.Errorf("core: not a bilsh disk index")
	}
	var offB [8]byte
	if _, err := f.ReadAt(offB[:], diskMagicLen); err != nil {
		return nil, fmt.Errorf("core: reading disk index header: %w", err)
	}
	dataOffset := int64(binary.LittleEndian.Uint64(offB[:]))
	if dataOffset < diskMagicLen+8 {
		return nil, fmt.Errorf("core: disk index data offset %d implausible", dataOffset)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if dataOffset > st.Size() {
		return nil, fmt.Errorf("core: disk index data offset %d beyond file size %d", dataOffset, st.Size())
	}

	meta := wire.NewReader(io.NewSectionReader(f, diskMagicLen+8, dataOffset-diskMagicLen-8))
	o, err := readOptions(meta, version)
	if err != nil {
		return nil, err
	}
	n := meta.Int()
	d := meta.Int()
	if err := meta.Err(); err != nil {
		return nil, err
	}
	if n < 0 || d <= 0 {
		return nil, fmt.Errorf("core: disk index shape %dx%d implausible", n, d)
	}
	if want := dataOffset + int64(n)*int64(d)*4; st.Size() < want {
		return nil, fmt.Errorf("core: disk index truncated: %d bytes, want %d", st.Size(), want)
	}

	var quant *vec.QuantizedMatrix
	if version >= 2 {
		if quant, err = readQuant(meta, n, d); err != nil {
			return nil, err
		}
	}
	tree, km, groups, err := readStructure(meta, o, n)
	if err != nil {
		return nil, err
	}
	stride := int64(4 * d)
	fetch := func(id int) []float32 {
		buf := make([]byte, stride)
		if _, err := f.ReadAt(buf, dataOffset+int64(id)*stride); err != nil {
			// A read failure below the size check above means the file
			// changed underneath us; surface loudly rather than return
			// garbage distances.
			panic(fmt.Sprintf("core: disk index row %d: %v", id, err))
		}
		row := make([]float32, d)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		return row
	}
	ix := newIndex(o, &vec.Matrix{N: n, D: d}, fetch, quant, tree, km, groups)
	return &DiskIndex{Index: ix, f: f}, nil
}

// Mapped reports whether the index serves from an mmap'd file (true only
// for v3 files on hosts with working mmap).
func (di *DiskIndex) Mapped() bool { return di.mapping != nil && di.mapping.Mapped() }

// Residency samples the resident-set stats of a mapped index (zero value
// when not mapped).
func (di *DiskIndex) Residency() ResidencyStats {
	if di.res == nil {
		return ResidencyStats{}
	}
	return di.res.sample()
}

// EnforceResidency applies the residency policy now: sample, and evict
// exact-row pages when over budget. Safe to call concurrently with
// queries; typically driven by a serving-tier ticker.
func (di *DiskIndex) EnforceResidency() ResidencyStats {
	if di.res == nil {
		return ResidencyStats{}
	}
	return di.res.enforce()
}

// SetRowsBudget replaces the exact-row resident budget (bytes; 0 means
// unlimited) for subsequent EnforceResidency calls.
func (di *DiskIndex) SetRowsBudget(b int64) {
	if di.res != nil {
		di.res.setBudget(b)
	}
}

// Close releases the file handle and, for mapped files, the mapping.
// The index must not be queried after Close: mapped reads would fault.
func (di *DiskIndex) Close() error {
	if di.mapping != nil {
		di.mapping.Close()
	}
	return di.f.Close()
}
