package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"bilsh/internal/durable"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

// Disk-backed index — the out-of-core mode the paper names as future work
// ("we also need to design efficient out-of-core algorithms to handle very
// large datasets"). The index metadata (partitioner, hash families, bucket
// tables, hierarchies) loads into memory, but the vector rows stay on disk
// in a fixed-stride section fetched with ReadAt only when the short-list
// search needs them. Memory is therefore proportional to the bucket
// structure (ids), not to the N×D vector payload — for GIST-512 descriptors
// the payload is ~100x the id volume.
//
// File layout (offsets fixed so rows are directly addressable):
//
//	[ 0,16)  raw magic "bilsh.Disk/2" zero-padded
//	[16,24)  uint64 dataOffset, little endian
//	[24, dataOffset)  wire-encoded metadata:
//	         options, N, D, quantized rows (v2), partitioner, groups
//	         (same sections as WriteTo)
//	[dataOffset, dataOffset+4·N·D)  float32 rows, little endian, stride 4·D
//
// Version 1 files ("bilsh.Disk/1", no quantization fields or section)
// still open; they query byte-identically to how they did when written.
// Under Quantize=sq8 the codes live in the metadata and are resident, so
// the short-list scan touches no disk — only the exact re-rank of the
// final shortlist fetches float32 rows.
const diskMagicLen = 16

var (
	diskMagicV1 = [diskMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'D', 'i', 's', 'k', '/', '1'}
	diskMagic   = [diskMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'D', 'i', 's', 'k', '/', '2'}
)

// WriteDiskTo serializes the index in the disk-backed layout. The writer
// must support seeking (an *os.File does): the data offset is back-patched
// once the metadata size is known. It returns the total bytes written.
func (ix *Index) WriteDiskTo(f io.WriteSeeker) (int64, error) {
	sn := ix.loadSnap()
	if err := sn.requireClean(); err != nil {
		return 0, err
	}
	if sn.fetch != nil {
		return 0, fmt.Errorf("core: cannot re-serialize a disk-backed index; Compact materializes it first")
	}
	var header [diskMagicLen + 8]byte
	copy(header[:], diskMagic[:])
	if _, err := f.Write(header[:]); err != nil {
		return 0, err
	}

	meta := wire.NewWriter(f)
	writeOptions(meta, ix.opts)
	meta.Int(sn.data.N)
	meta.Int(sn.data.D)
	writeQuant(meta, sn.quant)
	writeStructure(meta, sn.tree, sn.km, sn.groups)
	if err := meta.Flush(); err != nil {
		return 0, err
	}
	dataOffset, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}

	payload := make([]byte, 4*sn.data.D)
	for i := 0; i < sn.data.N; i++ {
		row := sn.data.Row(i)
		for j, v := range row {
			binary.LittleEndian.PutUint32(payload[4*j:], math.Float32bits(v))
		}
		if _, err := f.Write(payload); err != nil {
			return 0, fmt.Errorf("core: writing row %d: %w", i, err)
		}
	}
	end, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}

	binary.LittleEndian.PutUint64(header[diskMagicLen:], uint64(dataOffset))
	if _, err := f.Seek(diskMagicLen, io.SeekStart); err != nil {
		return 0, err
	}
	if _, err := f.Write(header[diskMagicLen:]); err != nil {
		return 0, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		return 0, err
	}
	return end, nil
}

// SaveDisk writes the disk-backed layout to path atomically: the bytes
// stream to path+".tmp", which is fsynced and renamed over path, so a
// crash mid-save never leaves a truncated index behind and any previous
// file at path stays intact until the new one is complete.
func (ix *Index) SaveDisk(path string) error {
	return durable.AtomicWrite(path, func(f *os.File) error {
		_, err := ix.WriteDiskTo(f)
		return err
	})
}

// DiskIndex is a queryable index whose vector rows live on disk. It
// supports the full reader API (Query, QueryBatch, QueryBatchParallel,
// ExactKNN — the latter streams the whole row section); dynamic inserts
// work (new rows live in memory) and Compact materializes the whole index
// back into memory.
type DiskIndex struct {
	*Index
	f *os.File
}

// OpenDisk loads the metadata of a disk-backed index and keeps the file
// handle open for row fetches.
func OpenDisk(path string) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	di, err := openDisk(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return di, nil
}

func openDisk(f *os.File) (*DiskIndex, error) {
	var header [diskMagicLen + 8]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, fmt.Errorf("core: reading disk index header: %w", err)
	}
	var version int
	switch {
	case bytes.Equal(header[:diskMagicLen], diskMagic[:]):
		version = 2
	case bytes.Equal(header[:diskMagicLen], diskMagicV1[:]):
		version = 1
	default:
		return nil, fmt.Errorf("core: not a bilsh disk index")
	}
	dataOffset := int64(binary.LittleEndian.Uint64(header[diskMagicLen:]))
	if dataOffset < diskMagicLen+8 {
		return nil, fmt.Errorf("core: disk index data offset %d implausible", dataOffset)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if dataOffset > st.Size() {
		return nil, fmt.Errorf("core: disk index data offset %d beyond file size %d", dataOffset, st.Size())
	}

	meta := wire.NewReader(io.NewSectionReader(f, diskMagicLen+8, dataOffset-diskMagicLen-8))
	o, err := readOptions(meta, version)
	if err != nil {
		return nil, err
	}
	n := meta.Int()
	d := meta.Int()
	if err := meta.Err(); err != nil {
		return nil, err
	}
	if n < 0 || d <= 0 {
		return nil, fmt.Errorf("core: disk index shape %dx%d implausible", n, d)
	}
	if want := dataOffset + int64(n)*int64(d)*4; st.Size() < want {
		return nil, fmt.Errorf("core: disk index truncated: %d bytes, want %d", st.Size(), want)
	}

	var quant *vec.QuantizedMatrix
	if version >= 2 {
		if quant, err = readQuant(meta, n, d); err != nil {
			return nil, err
		}
	}
	tree, km, groups, err := readStructure(meta, o, n)
	if err != nil {
		return nil, err
	}
	stride := int64(4 * d)
	fetch := func(id int) []float32 {
		buf := make([]byte, stride)
		if _, err := f.ReadAt(buf, dataOffset+int64(id)*stride); err != nil {
			// A read failure below the size check above means the file
			// changed underneath us; surface loudly rather than return
			// garbage distances.
			panic(fmt.Sprintf("core: disk index row %d: %v", id, err))
		}
		row := make([]float32, d)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		return row
	}
	ix := newIndex(o, &vec.Matrix{N: n, D: d}, fetch, quant, tree, km, groups)
	return &DiskIndex{Index: ix, f: f}, nil
}

// Close releases the file handle. The index must not be queried after.
func (di *DiskIndex) Close() error { return di.f.Close() }
