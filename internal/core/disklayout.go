package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"bilsh/internal/kmeans"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/mmap"
	"bilsh/internal/rptree"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

// Paged disk layout v3 ("bilsh.Disk/3") — the mmap-able index image.
//
// The v1/v2 disk format keeps metadata wire-encoded (decoded to heap at
// open) and only the float32 rows directly addressable. v3 instead lays
// every large structure out as fixed-width little-endian records in
// page-aligned sections, so an opened index aliases the mapping in place:
// rows reinterpret as []float32, SQ8 codes are the mapped bytes, bucket
// tables (ids, starts, key blob, in-place cuckoo index) map via
// lshtable.ViewMapped, and group member lists reinterpret as []int.
// Opening is O(buckets) heap; the O(N·D) payload and O(N·L) id arrays
// stay on disk and fault in on demand.
//
// File layout (offsets absolute, so the same image works embedded at a
// checkpoint header offset; every section offset is page-aligned):
//
//	[base+ 0,16)  magic "bilsh.Disk/3" zero-padded
//	[base+16,20)  uint32 page size (4096)
//	[base+20,24)  uint32 section count
//	[base+24,32)  uint64 total file size (truncation check)
//	then count 32-byte section entries:
//	     {kind u32, _ u32, off u64, size u64, crc32c u32, _ u32}
//	then uint32 CRC32C over the header bytes above
//
// Sections (kind → content):
//
//	1 meta    wire-encoded: options, n, d, SQ8 min/scale, partitioner,
//	          per-group width/family and the arrays-section offsets of
//	          the group's member list and table images
//	2 rows    float32 rows, little endian, stride 4·D
//	3 codes   SQ8 codes, stride D (present only under Quantize=sq8)
//	4 arrays  8-aligned blobs: per group an int64 member-id array, then
//	          one lshtable mapped image per table
//
// Every section carries a CRC32C checked at open (before any query can
// touch a mapped page), so truncated or bit-flipped files are rejected
// with an error instead of faulting mid-serve. Our own writers only ever
// replace index files via atomic rename (durable.AtomicWrite), which
// leaves a mapped inode intact — a serving index never observes its
// backing file change.
const (
	diskPage        = 4096
	diskMaxSections = 8

	diskSecMeta   = 1
	diskSecRows   = 2
	diskSecCodes  = 3
	diskSecArrays = 4
)

const diskMetaMagic = "bilsh.DiskMeta/3"

var diskMagicV3 = [diskMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'D', 'i', 's', 'k', '/', '3'}

var diskCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrBadDiskLayout tags every structural rejection of a paged index file
// (truncation, CRC mismatch, implausible counts). errors.Is-able.
var ErrBadDiskLayout = errors.New("core: invalid paged disk index")

func badLayout(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadDiskLayout, fmt.Sprintf(format, args...))
}

type diskSection struct {
	kind uint32
	off  uint64 // absolute file offset, page-aligned
	size uint64
	crc  uint32
}

type diskLayout struct {
	base     int64
	fileSize int64
	secs     []diskSection
}

func (l *diskLayout) find(kind uint32) (diskSection, bool) {
	for _, s := range l.secs {
		if s.kind == kind {
			return s, true
		}
	}
	return diskSection{}, false
}

func alignPage(x int64) int64 { return (x + diskPage - 1) &^ (diskPage - 1) }

// ---------------------------------------------------------------------------
// Writer

// diskV3Source is everything the writer needs, decoupled from Index so
// both WriteDiskTo (snapshot) and BuildDisk (streaming build) emit the
// same image.
type diskV3Source struct {
	opts   Options
	n, d   int
	quant  *vec.QuantizedMatrix
	tree   *rptree.Tree
	km     *kmeans.Model
	groups []*group
	// rows streams exactly 4·n·d bytes of little-endian float32 rows.
	rows func(w io.Writer) error
}

// crcWriter tracks the CRC32C and length of everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, diskCRC, p[:n])
	cw.n += int64(n)
	return n, err
}

var zeroPage [diskPage]byte

// padTo writes zero bytes advancing cur to target.
func padTo(w io.Writer, cur, target int64) (int64, error) {
	for cur < target {
		n := target - cur
		if n > diskPage {
			n = diskPage
		}
		wn, err := w.Write(zeroPage[:n])
		cur += int64(wn)
		if err != nil {
			return cur, err
		}
	}
	return cur, nil
}

// writeDiskV3 emits the paged layout at f's current offset (the layout
// base; 0 for standalone files, the checkpoint header length for durable
// checkpoints) and returns the bytes written.
func writeDiskV3(f io.WriteSeeker, src *diskV3Source) (int64, error) {
	base, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}

	// Plan the arrays section: per group the member-id array then the
	// per-table images, every blob a multiple of 8 bytes.
	type arrRef struct{ off, size uint64 }
	memberRefs := make([]arrRef, len(src.groups))
	tableRefs := make([][]arrRef, len(src.groups))
	var arraysLen uint64
	for gi, g := range src.groups {
		memberRefs[gi] = arrRef{arraysLen, uint64(8 * len(g.members))}
		arraysLen += memberRefs[gi].size
		tableRefs[gi] = make([]arrRef, len(g.tables))
		for t, tab := range g.tables {
			size := uint64(tab.MappedSize())
			tableRefs[gi][t] = arrRef{arraysLen, size}
			arraysLen += size
		}
	}

	// Serialize the meta section (small: O(groups · tables) refs).
	var mb bytes.Buffer
	mw := wire.NewWriter(&mb)
	mw.Magic(diskMetaMagic)
	writeOptions(mw, src.opts)
	mw.Int(src.n)
	mw.Int(src.d)
	mw.Bool(src.quant != nil)
	if src.quant != nil {
		mw.F32s(src.quant.Min)
		mw.F32s(src.quant.Scale)
	}
	switch {
	case src.tree != nil:
		mw.String("rptree")
		src.tree.Encode(mw)
	case src.km != nil:
		mw.String("kmeans")
		src.km.Encode(mw)
	default:
		mw.String("none")
	}
	mw.Int(len(src.groups))
	for gi, g := range src.groups {
		mw.U64(memberRefs[gi].off)
		mw.U64(uint64(len(g.members)))
		mw.F64(g.w)
		g.fam.Encode(mw)
		mw.Int(len(g.tables))
		for t := range g.tables {
			mw.U64(tableRefs[gi][t].off)
			mw.U64(tableRefs[gi][t].size)
		}
	}
	if err := mw.Flush(); err != nil {
		return 0, err
	}
	metaBytes := mb.Bytes()

	// Section offsets.
	nSec := 3
	if src.quant != nil {
		nSec = 4
	}
	hdrLen := int64(32 + 32*nSec + 4)
	metaOff := alignPage(base + hdrLen)
	arraysOff := alignPage(metaOff + int64(len(metaBytes)))
	next := arraysOff + int64(arraysLen)
	var codesOff int64
	if src.quant != nil {
		codesOff = alignPage(next)
		next = codesOff + int64(len(src.quant.Codes))
	}
	rowsOff := alignPage(next)
	rowsLen := 4 * int64(src.n) * int64(src.d)
	fileSize := rowsOff + rowsLen

	secs := make([]diskSection, 0, nSec)

	// Header region is back-patched at the end; zero-fill through metaOff.
	cur := base
	if cur, err = padTo(f, cur, metaOff); err != nil {
		return 0, err
	}

	// meta
	cw := &crcWriter{w: f}
	if _, err := cw.Write(metaBytes); err != nil {
		return 0, err
	}
	secs = append(secs, diskSection{diskSecMeta, uint64(metaOff), uint64(len(metaBytes)), cw.crc})
	cur += cw.n
	if cur, err = padTo(f, cur, arraysOff); err != nil {
		return 0, err
	}

	// arrays
	cw = &crcWriter{w: f}
	var buf []byte
	for gi, g := range src.groups {
		if uint64(cw.n) != memberRefs[gi].off {
			return 0, fmt.Errorf("core: disk layout: member array %d at %d, planned %d", gi, cw.n, memberRefs[gi].off)
		}
		buf = buf[:0]
		for _, id := range g.members {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
			if len(buf) >= 1<<16 {
				if _, err := cw.Write(buf); err != nil {
					return 0, err
				}
				buf = buf[:0]
			}
		}
		if _, err := cw.Write(buf); err != nil {
			return 0, err
		}
		for t, tab := range g.tables {
			if uint64(cw.n) != tableRefs[gi][t].off {
				return 0, fmt.Errorf("core: disk layout: table %d/%d at %d, planned %d", gi, t, cw.n, tableRefs[gi][t].off)
			}
			img := tab.AppendMapped(nil)
			if uint64(len(img)) != tableRefs[gi][t].size {
				return 0, fmt.Errorf("core: disk layout: table %d/%d image %d bytes, planned %d", gi, t, len(img), tableRefs[gi][t].size)
			}
			if _, err := cw.Write(img); err != nil {
				return 0, err
			}
		}
	}
	if uint64(cw.n) != arraysLen {
		return 0, fmt.Errorf("core: disk layout: arrays section %d bytes, planned %d", cw.n, arraysLen)
	}
	secs = append(secs, diskSection{diskSecArrays, uint64(arraysOff), arraysLen, cw.crc})
	cur += cw.n

	// codes
	if src.quant != nil {
		if cur, err = padTo(f, cur, codesOff); err != nil {
			return 0, err
		}
		cw = &crcWriter{w: f}
		if _, err := cw.Write(src.quant.Codes); err != nil {
			return 0, err
		}
		secs = append(secs, diskSection{diskSecCodes, uint64(codesOff), uint64(len(src.quant.Codes)), cw.crc})
		cur += cw.n
	}

	// rows
	if cur, err = padTo(f, cur, rowsOff); err != nil {
		return 0, err
	}
	cw = &crcWriter{w: f}
	if err := src.rows(cw); err != nil {
		return 0, err
	}
	if cw.n != rowsLen {
		return 0, fmt.Errorf("core: disk layout: rows section %d bytes, want %d", cw.n, rowsLen)
	}
	secs = append(secs, diskSection{diskSecRows, uint64(rowsOff), uint64(rowsLen), cw.crc})
	cur += cw.n
	if cur != fileSize {
		return 0, fmt.Errorf("core: disk layout: wrote %d bytes, planned %d", cur-base, fileSize-base)
	}

	// Back-patch the header.
	hdr := make([]byte, hdrLen)
	copy(hdr, diskMagicV3[:])
	binary.LittleEndian.PutUint32(hdr[16:], diskPage)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(nSec))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(fileSize))
	for i, s := range secs {
		e := hdr[32+32*i:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.size)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	binary.LittleEndian.PutUint32(hdr[hdrLen-4:], crc32.Checksum(hdr[:hdrLen-4], diskCRC))
	if _, err := f.Seek(base, io.SeekStart); err != nil {
		return 0, err
	}
	if _, err := f.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := f.Seek(fileSize, io.SeekStart); err != nil {
		return 0, err
	}
	return fileSize - base, nil
}

// ---------------------------------------------------------------------------
// Reader

// readDiskLayout parses and validates the header at base. Per-section
// CRCs are verified separately (verify) so callers control when the full
// file is read.
func readDiskLayout(f *os.File, base int64) (*diskLayout, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var fixed [32]byte
	if _, err := f.ReadAt(fixed[:], base); err != nil {
		return nil, badLayout("header unreadable: %v", err)
	}
	if !bytes.Equal(fixed[:diskMagicLen], diskMagicV3[:]) {
		return nil, badLayout("bad magic %q", fixed[:diskMagicLen])
	}
	if ps := binary.LittleEndian.Uint32(fixed[16:]); ps != diskPage {
		return nil, badLayout("page size %d, want %d", ps, diskPage)
	}
	nSec := int(binary.LittleEndian.Uint32(fixed[20:]))
	if nSec < 1 || nSec > diskMaxSections {
		return nil, badLayout("section count %d implausible", nSec)
	}
	fileSize := int64(binary.LittleEndian.Uint64(fixed[24:]))
	if fileSize != st.Size() {
		return nil, badLayout("file is %d bytes, header says %d (truncated or overwritten)", st.Size(), fileSize)
	}
	hdrLen := int64(32 + 32*nSec + 4)
	hdr := make([]byte, hdrLen)
	if _, err := f.ReadAt(hdr, base); err != nil {
		return nil, badLayout("header unreadable: %v", err)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[hdrLen-4:]), crc32.Checksum(hdr[:hdrLen-4], diskCRC); got != want {
		return nil, badLayout("header CRC mismatch")
	}

	l := &diskLayout{base: base, fileSize: fileSize}
	seen := map[uint32]bool{}
	for i := 0; i < nSec; i++ {
		e := hdr[32+32*i:]
		s := diskSection{
			kind: binary.LittleEndian.Uint32(e[0:]),
			off:  binary.LittleEndian.Uint64(e[8:]),
			size: binary.LittleEndian.Uint64(e[16:]),
			crc:  binary.LittleEndian.Uint32(e[24:]),
		}
		if s.kind < diskSecMeta || s.kind > diskSecArrays || seen[s.kind] {
			return nil, badLayout("section %d kind %d invalid or duplicate", i, s.kind)
		}
		seen[s.kind] = true
		if s.off%diskPage != 0 || s.off < uint64(base+hdrLen) || s.size > uint64(fileSize) ||
			s.off+s.size > uint64(fileSize) || s.off+s.size < s.off {
			return nil, badLayout("section kind %d [%d,+%d) outside file of %d bytes", s.kind, s.off, s.size, fileSize)
		}
		l.secs = append(l.secs, s)
	}
	for _, kind := range []uint32{diskSecMeta, diskSecRows, diskSecArrays} {
		if !seen[kind] {
			return nil, badLayout("required section kind %d missing", kind)
		}
	}
	return l, nil
}

// verify streams every section through its CRC32C. Reads go through
// pread, not the mapping, so verification does not commit the file to the
// resident set.
func (l *diskLayout) verify(f *os.File) error {
	buf := make([]byte, 1<<20)
	for _, s := range l.secs {
		var crc uint32
		off, remaining := int64(s.off), int64(s.size)
		for remaining > 0 {
			n := int64(len(buf))
			if n > remaining {
				n = remaining
			}
			if _, err := f.ReadAt(buf[:n], off); err != nil {
				return badLayout("section kind %d unreadable at %d: %v", s.kind, off, err)
			}
			crc = crc32.Update(crc, diskCRC, buf[:n])
			off += n
			remaining -= n
		}
		if crc != s.crc {
			return badLayout("section kind %d CRC mismatch (corrupt or truncated)", s.kind)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Open

// DiskOpenOptions configures OpenDiskWith.
type DiskOpenOptions struct {
	// ForceHeap loads the whole file into memory instead of mapping it —
	// the heap-resident baseline the out-of-core benchmark compares
	// against. Query results are byte-identical either way.
	ForceHeap bool
	// Residency is the paging policy for mapped files (zero value: pin
	// codes, no row budget).
	Residency ResidencyPolicy
}

// openDiskV3 opens a paged layout whose header sits at base and returns
// the in-place index over it. The returned mapping is nil under
// ForceHeap (or on hosts without mmap support).
func openDiskV3(f *os.File, base int64, o DiskOpenOptions) (*Index, *mmap.Mapping, *residency, error) {
	lay, err := readDiskLayout(f, base)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := lay.verify(f); err != nil {
		return nil, nil, nil, err
	}

	var (
		m    *mmap.Mapping
		blob []byte
	)
	if o.ForceHeap {
		blob = make([]byte, lay.fileSize)
		if _, err := f.ReadAt(blob, 0); err != nil {
			return nil, nil, nil, badLayout("reading file: %v", err)
		}
	} else {
		if m, err = mmap.OpenFile(f); err != nil {
			return nil, nil, nil, err
		}
		blob = m.Bytes()
		if int64(len(blob)) != lay.fileSize {
			m.Close()
			return nil, nil, nil, badLayout("mapped %d bytes, want %d", len(blob), lay.fileSize)
		}
	}
	ix, err := buildFromLayout(blob, lay)
	if err != nil {
		if m != nil {
			m.Close()
		}
		return nil, nil, nil, err
	}
	var res *residency
	if m != nil && m.Mapped() {
		res = newResidency(m, lay, o.Residency)
	}
	// Root the mapping from the snapshot so a later Compact/adoptBase swap
	// can retire it to the GC without racing in-flight readers.
	ix.loadSnap().mapped = m
	return ix, m, res, nil
}

func secSlice(blob []byte, s diskSection) []byte { return blob[s.off : s.off+s.size] }

// buildFromLayout assembles the in-place Index over a validated layout.
// Hostile inputs that pass the CRCs must still never panic: every offset,
// count and id decoded below is bounds-checked before use.
func buildFromLayout(blob []byte, lay *diskLayout) (*Index, error) {
	metaSec, _ := lay.find(diskSecMeta)
	rowsSec, _ := lay.find(diskSecRows)
	arraysSec, _ := lay.find(diskSecArrays)
	arrays := secSlice(blob, arraysSec)

	rr := wire.NewReader(bytes.NewReader(secSlice(blob, metaSec)))
	rr.ExpectMagic(diskMetaMagic)
	o, err := readOptions(rr, 3)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDiskLayout, err)
	}
	n := rr.Int()
	d := rr.Int()
	hasQuant := rr.Bool()
	var qmin, qscale []float32
	if hasQuant {
		qmin = rr.F32s()
		qscale = rr.F32s()
	}
	if err := rr.Err(); err != nil {
		return nil, badLayout("meta: %v", err)
	}
	if n < 0 || d <= 0 || d > 1<<20 {
		return nil, badLayout("shape %dx%d implausible", n, d)
	}
	if uint64(rowsSec.size) != uint64(n)*uint64(d)*4 {
		return nil, badLayout("rows section %d bytes, want %d", rowsSec.size, uint64(n)*uint64(d)*4)
	}

	var quant *vec.QuantizedMatrix
	if hasQuant {
		codesSec, ok := lay.find(diskSecCodes)
		if !ok {
			return nil, badLayout("quantized meta but no codes section")
		}
		if uint64(codesSec.size) != uint64(n)*uint64(d) {
			return nil, badLayout("codes section %d bytes, want %d", codesSec.size, uint64(n)*uint64(d))
		}
		if len(qmin) != d || len(qscale) != d {
			return nil, badLayout("quant min/scale lengths %d/%d, want %d", len(qmin), len(qscale), d)
		}
		quant = &vec.QuantizedMatrix{Codes: secSlice(blob, codesSec), N: n, D: d, Min: qmin, Scale: qscale}
	}

	var (
		tree *rptree.Tree
		km   *kmeans.Model
	)
	switch kind := rr.String(); kind {
	case "rptree":
		if tree, err = rptree.DecodeTree(rr); err != nil {
			return nil, badLayout("rptree: %v", err)
		}
	case "kmeans":
		if km, err = kmeans.DecodeModel(rr); err != nil {
			return nil, badLayout("kmeans: %v", err)
		}
	case "none":
	default:
		if err := rr.Err(); err != nil {
			return nil, badLayout("partitioner: %v", err)
		}
		return nil, badLayout("unknown partitioner section %q", kind)
	}

	nGroups := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, badLayout("meta: %v", err)
	}
	if nGroups < 1 || nGroups > 1<<20 {
		return nil, badLayout("group count %d implausible", nGroups)
	}
	arrRange := func(off, size uint64) ([]byte, error) {
		if off%8 != 0 || off > uint64(len(arrays)) || size > uint64(len(arrays)) || off+size > uint64(len(arrays)) {
			return nil, badLayout("arrays ref [%d,+%d) outside section of %d bytes", off, size, len(arrays))
		}
		return arrays[off : off+size], nil
	}
	groups := make([]*group, nGroups)
	for gi := range groups {
		mOff := rr.U64()
		mCount := rr.U64()
		w := rr.F64()
		if err := rr.Err(); err != nil {
			return nil, badLayout("group %d: %v", gi, err)
		}
		if mCount > uint64(n) {
			return nil, badLayout("group %d claims %d members of %d rows", gi, mCount, n)
		}
		mb, err := arrRange(mOff, 8*mCount)
		if err != nil {
			return nil, err
		}
		g := &group{members: mmap.ViewInts(mb), w: w}
		for _, id := range g.members {
			if id < 0 || id >= n {
				return nil, badLayout("group %d references row %d of %d", gi, id, n)
			}
		}
		if g.fam, err = lshfunc.DecodeFamily(rr); err != nil {
			return nil, badLayout("group %d family: %v", gi, err)
		}
		if g.lat, err = newLattice(o.Lattice, o.Params.M); err != nil {
			return nil, badLayout("group %d: %v", gi, err)
		}
		nTables := rr.Int()
		if err := rr.Err(); err != nil {
			return nil, badLayout("group %d: %v", gi, err)
		}
		if nTables != o.Params.L {
			return nil, badLayout("group %d has %d tables, options say %d", gi, nTables, o.Params.L)
		}
		g.tables = make([]*lshtable.Table, nTables)
		for t := range g.tables {
			tOff := rr.U64()
			tSize := rr.U64()
			if err := rr.Err(); err != nil {
				return nil, badLayout("group %d table %d: %v", gi, t, err)
			}
			tb, err := arrRange(tOff, tSize)
			if err != nil {
				return nil, err
			}
			tab, err := lshtable.ViewMapped(tb, n)
			if err != nil {
				return nil, fmt.Errorf("%w: group %d table %d: %v", ErrBadDiskLayout, gi, t, err)
			}
			g.tables[t] = tab
		}
		groups[gi] = g
	}
	if err := rr.Err(); err != nil {
		return nil, badLayout("meta: %v", err)
	}

	data := &vec.Matrix{Data: mmap.ViewFloat32s(secSlice(blob, rowsSec)), N: n, D: d}
	if o.ProbeMode == ProbeHierarchy {
		if err := buildHierarchies(groups, o); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDiskLayout, err)
		}
	}
	return newIndex(o, data, nil, quant, tree, km, groups), nil
}
