package core

import (
	"sync"

	"bilsh/internal/metrics"
	"bilsh/internal/mmap"
)

// Residency policy for mapped indexes. The paged layout splits an index
// into sections with very different access patterns: the SQ8 code matrix
// is scanned for every candidate (hot, small — D bytes/row), the bucket
// arrays are probed on every query (hot, small), and the exact float32
// rows are touched only for re-rank (cold, 4·D bytes/row — the dominant
// section). The default policy therefore pins codes and arrays and lets
// rows demand-page, with an optional budget that evicts row pages when
// the sampled resident set exceeds it. That is what lets a serving index
// hold steady recall with an RSS a fraction of the file size.
type ResidencyPolicy struct {
	// PinCodes mlocks the SQ8 code and bucket-array sections (best
	// effort; RLIMIT_MEMLOCK may cap it, in which case the kernel LRU
	// keeps them warm anyway because every query touches them).
	PinCodes bool
	// RowsBudget caps the resident bytes of the exact-row section; 0
	// means unlimited (kernel-managed). Enforcement happens on
	// EnforceResidency calls, not inline on the query path.
	RowsBudget int64
}

var (
	metMappedBytes = metrics.Default().Gauge(
		"bilsh_core_mmap_mapped_bytes", "Bytes of index file mapped into the address space.")
	metRowsResident = metrics.Default().Gauge(
		"bilsh_core_mmap_rows_resident_bytes", "Sampled resident bytes of the exact-row section.")
	metCodesResident = metrics.Default().Gauge(
		"bilsh_core_mmap_codes_resident_bytes", "Sampled resident bytes of the SQ8 code and bucket-array sections.")
	metRowsBudget = metrics.Default().Gauge(
		"bilsh_core_mmap_rows_budget_bytes", "Configured resident budget for the exact-row section (0 = unlimited).")
	metEvictions = metrics.Default().Counter(
		"bilsh_core_mmap_evictions_total", "Times EnforceResidency dropped the exact-row section to honor the budget.")
	metRemapErrors = metrics.Default().Counter(
		"bilsh_core_mmap_remap_errors_total", "Post-checkpoint remaps that failed (index kept serving the heap base).")
)

// residency tracks and enforces the paging policy for one mapped index.
type residency struct {
	mu     sync.Mutex
	m      *mmap.Mapping
	policy ResidencyPolicy
	rows   diskSection
	hot    []diskSection // codes + arrays: scanned or probed every query
}

// newResidency applies the initial policy to a fresh mapping: rows are
// advised MADV_RANDOM (re-rank touches scattered rows; readahead would
// drag in neighbors and inflate RSS) and the hot sections optionally
// pinned.
func newResidency(m *mmap.Mapping, lay *diskLayout, p ResidencyPolicy) *residency {
	r := &residency{m: m, policy: p}
	for _, s := range lay.secs {
		switch s.kind {
		case diskSecRows:
			r.rows = s
			m.AdviseRandom(int64(s.off), int64(s.size)) //nolint:errcheck
		case diskSecCodes, diskSecArrays:
			r.hot = append(r.hot, s)
			if p.PinCodes {
				m.Pin(int64(s.off), int64(s.size)) //nolint:errcheck
			}
		}
	}
	metMappedBytes.Set(int64(m.Len()))
	metRowsBudget.Set(p.RowsBudget)
	return r
}

// ResidencyStats is a point-in-time mincore sample of the mapping.
type ResidencyStats struct {
	MappedBytes   int64 // total bytes mapped
	RowsBytes     int64 // size of the exact-row section
	RowsResident  int64 // resident bytes of the exact-row section
	CodesResident int64 // resident bytes of the code + bucket-array sections
	RowsBudget    int64 // configured budget (0 = unlimited)
}

// sample reads residency via mincore and refreshes the gauges.
func (r *residency) sample() ResidencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ResidencyStats{
		MappedBytes: int64(r.m.Len()),
		RowsBytes:   int64(r.rows.size),
		RowsBudget:  r.policy.RowsBudget,
	}
	if n, err := r.m.Resident(int64(r.rows.off), int64(r.rows.size)); err == nil {
		st.RowsResident = n
	}
	for _, s := range r.hot {
		if n, err := r.m.Resident(int64(s.off), int64(s.size)); err == nil {
			st.CodesResident += n
		}
	}
	metRowsResident.Set(st.RowsResident)
	metCodesResident.Set(st.CodesResident)
	return st
}

// enforce samples residency and, when the exact-row section exceeds the
// budget, drops its clean pages (MADV_DONTNEED on a read-only file
// mapping; subsequent re-ranks refault from the page cache or disk).
// Returns the post-check stats. Queries keep running throughout — the
// mapping stays valid, only page residency changes.
func (r *residency) enforce() ResidencyStats {
	st := r.sample()
	if r.policy.RowsBudget > 0 && st.RowsResident > r.policy.RowsBudget {
		r.mu.Lock()
		r.m.Evict(int64(r.rows.off), int64(r.rows.size)) //nolint:errcheck
		r.mu.Unlock()
		metEvictions.Inc()
		st = r.sample()
	}
	return st
}

// setBudget replaces the rows budget at runtime.
func (r *residency) setBudget(b int64) {
	r.mu.Lock()
	r.policy.RowsBudget = b
	r.mu.Unlock()
	metRowsBudget.Set(b)
}
