package core

import (
	"math"
	"runtime"
	"slices"
	"time"

	"bilsh/internal/knn"
	"bilsh/internal/topk"
	"bilsh/internal/vec"
)

// The Hamming read path. Level 1 routes on the float query exactly like
// the Euclidean path; level 2 sketches the query once (hyperplane signs
// plus per-plane margins), probes each table's bit-sampled bucket, and —
// under ProbeMulti — perturbs the key by flipping its least-confident bits
// first: a key bit whose hyperplane margin is near zero is the one most
// likely to disagree with a true neighbor's sketch (the query-directed
// flip order of the dynamic-query-modification literature). Candidates
// rank by exact Hamming distance over the packed sketches.

// gatherHamming is gatherPlan's MetricHamming counterpart. It honors the
// same resolved budgets (rp.tables, rp.probes) and early-termination
// triggers, so Plan semantics carry over unchanged.
func (sn *snapshot) gatherHamming(q []float32, rp *resolvedPlan, mode ProbeMode, s *scratch) PlanStats {
	routeStart := time.Now()
	gi := sn.groupOf(q)
	g := sn.groups[gi]
	ps := PlanStats{
		QueryStats:     QueryStats{Group: gi},
		ResolvedTables: rp.tables,
		ResolvedProbes: rp.probes,
	}
	stats := &ps.QueryStats
	stats.Timings.Route = time.Since(routeStart)
	s.begin(sn)

	sketchStart := time.Now()
	// One sketch serves every table; margins are computed unconditionally
	// (one store per plane) so single- and multiprobe share the code path.
	sn.sketcher.SketchWithMargins(q, s.qbits, s.qmarg)
	stats.Timings.Probe += time.Since(sketchStart)

	term := rp.term()
	var ts termState
	stop := false
	for t := 0; t < rp.tables && !stop; t++ {
		ps.TablesProbed = t + 1
		probeStart := time.Now()
		s.key = g.bsamp.AppendKey(s.key[:0], t, s.qbits)
		stats.Timings.Probe += time.Since(probeStart)

		scanStart := time.Now()
		stats.Probes++
		sn.addCandidates(s, stats, g.tables[t].BucketBytes(s.key))
		stop = term && rp.stop(&ts, len(s.cands))

		if mode == ProbeMulti && rp.probes > 1 && !stop {
			stop = sn.probeHammingFlips(s, stats, g, t, rp, term, &ts)
		}
		stats.Timings.Scan += time.Since(scanStart)
	}
	ps.TerminatedEarly = stop
	stats.Candidates = len(s.cands)
	// BucketBytes returns slices into snapshot-owned storage; candidate ids
	// are copied into scratch by now, but the probe loop itself must not
	// outlive the snapshot.
	runtime.KeepAlive(sn)
	return ps
}

// probeHammingFlips runs table t's perturbation sequence: key bits sorted
// by ascending hyperplane-margin magnitude, probed as single flips and
// then pairs (in the deterministic order (0,1),(0,2),(1,2),(0,3),... that
// front-loads low-rank pairs), until rp.probes buckets have been probed,
// the 1+M+M(M−1)/2 sequence is exhausted, or a termination trigger fires.
// It reports whether a trigger fired.
func (sn *snapshot) probeHammingFlips(s *scratch, stats *QueryStats, g *group, t int, rp *resolvedPlan, term bool, ts *termState) bool {
	m := g.bsamp.M()
	pos := g.bsamp.Positions(t)
	if cap(s.bitOrder) < m {
		s.bitOrder = make([]int, m)
	}
	s.bitOrder = s.bitOrder[:m]
	for j := range s.bitOrder {
		s.bitOrder[j] = j
	}
	// Insertion sort by |margin| (M is small and the sort must not
	// allocate; ties keep index order, so the sequence is deterministic).
	for a := 1; a < m; a++ {
		j := s.bitOrder[a]
		mj := math.Abs(s.qmarg[pos[j]])
		b := a - 1
		for b >= 0 && math.Abs(s.qmarg[pos[s.bitOrder[b]]]) > mj {
			s.bitOrder[b+1] = s.bitOrder[b]
			b--
		}
		s.bitOrder[b+1] = j
	}

	kl := g.bsamp.KeyLen()
	if cap(s.flipKey) < kl {
		s.flipKey = make([]byte, kl)
	}
	s.flipKey = s.flipKey[:kl]
	probed := 1 // the home bucket
	for a := 0; a < m && probed < rp.probes; a++ {
		j := s.bitOrder[a]
		copy(s.flipKey, s.key)
		s.flipKey[j>>3] ^= 1 << (uint(j) & 7)
		stats.Probes++
		probed++
		sn.addCandidates(s, stats, g.tables[t].BucketBytes(s.flipKey))
		if term && rp.stop(ts, len(s.cands)) {
			return true
		}
	}
	for b := 1; b < m && probed < rp.probes; b++ {
		for a := 0; a < b && probed < rp.probes; a++ {
			ja, jb := s.bitOrder[a], s.bitOrder[b]
			copy(s.flipKey, s.key)
			s.flipKey[ja>>3] ^= 1 << (uint(ja) & 7)
			s.flipKey[jb>>3] ^= 1 << (uint(jb) & 7)
			stats.Probes++
			probed++
			sn.addCandidates(s, stats, g.tables[t].BucketBytes(s.flipKey))
			if term && rp.stop(ts, len(s.cands)) {
				return true
			}
		}
	}
	return false
}

// rankHamming ranks the gathered candidates by exact Hamming distance to
// the query sketch left in s.qbits by gatherHamming. Like rankWith, the
// scan walks candidates in ascending id order and only the two result
// slices allocate.
func (sn *snapshot) rankHamming(k int, s *scratch) knn.Result {
	slices.Sort(s.cands)
	h := s.topK(k)
	if cap(s.dists) < len(s.cands) {
		s.dists = make([]float64, len(s.cands))
	}
	s.dists = s.dists[:len(s.cands)]
	vec.HammingToRows(s.dists, sn.sketches, s.cands, s.qbits)
	for i, id := range s.cands {
		if d := s.dists[i]; h.Accepts(d) {
			h.Push(int(id), d)
		}
	}
	s.items = h.AppendSorted(s.items[:0])
	r := knn.Result{IDs: make([]int, len(s.items)), Dists: make([]float64, len(s.items))}
	for i, it := range s.items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	runtime.KeepAlive(sn)
	return r
}

// exactHamming is ExactKNN's Hamming branch: sketch the query, linear-scan
// the packed sketch matrix. Hamming indexes never carry overlay rows, so
// the id space is exactly the base matrix.
func (sn *snapshot) exactHamming(q []float32, k int) knn.Result {
	qb := make([]uint64, sn.sketcher.Words())
	sn.sketcher.Sketch(q, qb)
	h := topk.New(k)
	for id := 0; id < sn.sketches.N; id++ {
		if sn.isDeleted(id) {
			continue
		}
		d := float64(vec.Hamming(sn.sketches.Row(id), qb))
		if h.Accepts(d) {
			h.Push(id, d)
		}
	}
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	runtime.KeepAlive(sn)
	return r
}
