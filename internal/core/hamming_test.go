package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// hammingIndex builds a small fixed-seed Hamming index over clustered data.
func hammingIndex(t *testing.T, mode ProbeMode, probes int) (*Index, *vec.Matrix) {
	t.Helper()
	rng := xrand.New(17)
	// Clustered data: true neighbors must be genuinely close in Hamming
	// space for recall against the exact scan to be meaningful. 100
	// clusters of 8 points whose sketches differ in only a few bits.
	const clusters, perCluster, d = 100, 8, 24
	const n = clusters * perCluster
	data := vec.NewMatrix(n, d)
	for c := 0; c < clusters; c++ {
		center := rng.GaussianVec(d)
		for p := 0; p < perCluster; p++ {
			row := data.Row(c*perCluster + p)
			for j := range row {
				row[j] = center[j] + 0.08*float32(rng.NormFloat64())
			}
		}
	}
	qs := vec.NewMatrix(40, d)
	for i := 0; i < qs.N; i++ {
		base := data.Row(rng.Intn(n))
		row := qs.Row(i)
		for j := range row {
			row[j] = base[j] + 0.02*float32(rng.NormFloat64())
		}
	}
	ix, err := Build(data, Options{
		Metric:      MetricHamming,
		Bits:        256,
		Partitioner: PartitionRPTree,
		Groups:      4,
		ProbeMode:   mode,
		Probes:      probes,
		Params:      lshfunc.Params{M: 16, L: 8},
	}, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	return ix, qs
}

// TestHammingBuildQuery drives Options{Metric: Hamming} end to end:
// build, query, and compare against the exact-Hamming linear scan.
func TestHammingBuildQuery(t *testing.T) {
	for _, tc := range []struct {
		mode      ProbeMode
		probes    int
		minRecall float64
	}{
		{ProbeSingle, 1, 0.45},
		{ProbeMulti, 24, 0.70},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			ix, qs := hammingIndex(t, tc.mode, tc.probes)
			const k = 10
			var hit, want int
			for qi := 0; qi < qs.N; qi++ {
				q := qs.Row(qi)
				res, st := ix.Query(q, k)
				exact := ix.ExactKNN(q, k)
				want += len(exact.IDs)
				truth := map[int]bool{}
				for _, id := range exact.IDs {
					truth[id] = true
				}
				for _, id := range res.IDs {
					if truth[id] {
						hit++
					}
				}
				// Returned distances must be the exact Hamming distances,
				// ascending.
				for i, id := range res.IDs {
					d := float64(vec.Hamming(sketchOf(ix, id), querySketch(ix, q)))
					if res.Dists[i] != d {
						t.Fatalf("query %d: result %d distance %g, want exact %g", qi, id, res.Dists[i], d)
					}
					if i > 0 && res.Dists[i] < res.Dists[i-1] {
						t.Fatalf("query %d: distances not ascending", qi)
					}
				}
				if st.Candidates == 0 {
					t.Fatalf("query %d gathered no candidates", qi)
				}
			}
			recall := float64(hit) / float64(want)
			if recall < tc.minRecall {
				t.Fatalf("recall %.3f below %.2f floor", recall, tc.minRecall)
			}
		})
	}
}

// sketchOf returns row id's packed sketch (test helper).
func sketchOf(ix *Index, id int) []uint64 {
	return ix.loadSnap().sketches.Row(id)
}

// querySketch sketches q with the index's sketcher (test helper).
func querySketch(ix *Index, q []float32) []uint64 {
	sn := ix.loadSnap()
	out := make([]uint64, sn.sketcher.Words())
	sn.sketcher.Sketch(q, out)
	return out
}

// TestHammingMultiprobeBeatsSingle pins the point of query-directed flips:
// more probes gather strictly more candidates and at least as much recall.
func TestHammingMultiprobeBeatsSingle(t *testing.T) {
	ixS, qs := hammingIndex(t, ProbeSingle, 1)
	ixM, _ := hammingIndex(t, ProbeMulti, 24)
	var candS, candM int
	for qi := 0; qi < qs.N; qi++ {
		_, stS := ixS.Query(qs.Row(qi), 10)
		_, stM := ixM.Query(qs.Row(qi), 10)
		candS += stS.Candidates
		candM += stM.Candidates
		if stM.Probes <= stS.Probes {
			t.Fatalf("query %d: multiprobe probed %d buckets, single %d", qi, stM.Probes, stS.Probes)
		}
	}
	if candM <= candS {
		t.Fatalf("multiprobe gathered %d candidates total, single %d", candM, candS)
	}
}

// TestHammingRoundTrip pins the wire v4 format: a Hamming index writes the
// v4 magic, serialization is byte-deterministic, and the decoded index
// queries byte-identically.
func TestHammingRoundTrip(t *testing.T) {
	ix, qs := hammingIndex(t, ProbeMulti, 16)
	var buf1, buf2 bytes.Buffer
	if _, err := ix.WriteTo(&buf1); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two WriteTo calls produced different bytes")
	}
	if !strings.Contains(string(buf1.Bytes()[:32]), "bilsh.Index/4") {
		t.Fatalf("Hamming index did not write the v4 magic: %q", buf1.Bytes()[:32])
	}
	ix2, err := ReadIndex(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Options().Metric != MetricHamming || ix2.Options().Bits != 256 {
		t.Fatalf("decoded options lost the metric: %+v", ix2.Options())
	}
	for qi := 0; qi < qs.N; qi++ {
		q := qs.Row(qi)
		a, _ := ix.Query(q, 10)
		b, _ := ix2.Query(q, 10)
		if len(a.IDs) != len(b.IDs) {
			t.Fatalf("query %d: result sizes differ", qi)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] || a.Dists[i] != b.Dists[i] {
				t.Fatalf("query %d: decoded index diverges at rank %d", qi, i)
			}
		}
	}
}

// TestEuclideanStillWritesV2 is the backcompat pin: adding the Hamming
// family must not move Euclidean indexes off the v2 container (whose v1/v2
// files load byte-identically by the existing serialization suite).
func TestEuclideanStillWritesV2(t *testing.T) {
	rng := xrand.New(3)
	data := vec.NewMatrix(100, 8)
	for i := 0; i < data.N; i++ {
		copy(data.Row(i), rng.GaussianVec(8))
	}
	ix, err := Build(data, Options{}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf.Bytes()[:32]), "bilsh.Index/2") {
		t.Fatalf("Euclidean index stopped writing the v2 magic: %q", buf.Bytes()[:32])
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestHammingQueryAllocs extends the ≤2-alloc pin to binary indexes.
func TestHammingQueryAllocs(t *testing.T) {
	for _, tc := range []struct {
		mode   ProbeMode
		probes int
	}{{ProbeSingle, 1}, {ProbeMulti, 24}} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			ix, qs := hammingIndex(t, tc.mode, tc.probes)
			s := ix.getScratch()
			for i := 0; i < qs.N; i++ {
				ix.query(qs.Row(i), 5, s)
			}
			qi := 0
			got := testing.AllocsPerRun(200, func() {
				ix.query(qs.Row(qi%qs.N), 5, s)
				qi++
			})
			if got > 2 {
				t.Fatalf("Hamming query allocates %.1f/op in steady state, want <= 2", got)
			}
		})
	}
}

// TestHammingStaticContract pins the dynamic-path gates: Insert/Compact
// refuse, Delete works (tombstone-only), and the disk tiers refuse.
func TestHammingStaticContract(t *testing.T) {
	ix, qs := hammingIndex(t, ProbeSingle, 1)
	if _, err := ix.Insert(qs.Row(0)); !errors.Is(err, ErrHammingStatic) {
		t.Fatalf("Insert returned %v, want ErrHammingStatic", err)
	}
	if _, err := ix.Compact(); !errors.Is(err, ErrHammingStatic) {
		t.Fatalf("Compact returned %v, want ErrHammingStatic", err)
	}
	if err := ix.CompactAsync(); !errors.Is(err, ErrHammingStatic) {
		t.Fatalf("CompactAsync returned %v, want ErrHammingStatic", err)
	}
	if err := ix.SetQuantize(QuantizeSQ8, 0); err == nil {
		t.Fatal("SetQuantize(SQ8) accepted on a Hamming index")
	}

	// Delete is tombstone-only and must take effect in queries and ExactKNN.
	q := qs.Row(0)
	before := ix.ExactKNN(q, 5)
	if len(before.IDs) == 0 {
		t.Fatal("no neighbors")
	}
	victim := before.IDs[0]
	if !ix.Delete(victim) {
		t.Fatal("Delete reported miss for a live id")
	}
	after := ix.ExactKNN(q, 5)
	for _, id := range after.IDs {
		if id == victim {
			t.Fatal("deleted id still in ExactKNN results")
		}
	}
	res, _ := ix.Query(q, ix.N())
	for _, id := range res.IDs {
		if id == victim {
			t.Fatal("deleted id still in Query results")
		}
	}
}

// TestHammingOptionValidation covers the Hamming-specific constraint set.
func TestHammingOptionValidation(t *testing.T) {
	rng := xrand.New(1)
	data := vec.NewMatrix(64, 8)
	for i := 0; i < data.N; i++ {
		copy(data.Row(i), rng.GaussianVec(8))
	}
	build := func(o Options) error {
		_, err := Build(data, o, xrand.New(2))
		return err
	}
	if err := build(Options{Metric: MetricHamming, ProbeMode: ProbeHierarchy}); err == nil {
		t.Fatal("accepted ProbeHierarchy for Hamming")
	}
	if err := build(Options{Metric: MetricHamming, Bits: 8, Params: lshfunc.Params{M: 16, L: 2}}); err == nil {
		t.Fatal("accepted M > Bits")
	}
	if err := build(Options{Metric: MetricHamming, Quantize: QuantizeSQ8}); err == nil {
		t.Fatal("accepted SQ8 quantization for Hamming")
	}
	if err := build(Options{Metric: MetricKind(9)}); err == nil {
		t.Fatal("accepted an unknown metric kind")
	}
	// Defaults: Bits 256, M widened to 16, AutoTuneW forced off.
	ix, err := Build(data, Options{Metric: MetricHamming, AutoTuneW: true}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	o := ix.Options()
	if o.Bits != 256 || o.Params.M != 16 || o.AutoTuneW {
		t.Fatalf("filled options = bits %d M %d autotune %v, want 256/16/false", o.Bits, o.Params.M, o.AutoTuneW)
	}
}

// TestParseMetricKind covers the CLI spellings.
func TestParseMetricKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MetricKind
	}{{"", MetricEuclidean}, {"euclidean", MetricEuclidean}, {"l2", MetricEuclidean}, {"hamming", MetricHamming}} {
		got, err := ParseMetricKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMetricKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMetricKind("cosine"); err == nil {
		t.Fatal("accepted an unknown metric spelling")
	}
}
