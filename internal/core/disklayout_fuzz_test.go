package core

import (
	"os"
	"path/filepath"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// FuzzDiskLayout throws arbitrary bytes at the paged-layout open path.
// The contract under fuzzing: OpenDisk either succeeds on a valid image
// or returns a structured error — it must never panic, over-read, or
// hand back an index whose arrays point outside the file. The seed
// corpus is real writer output (plain, quantized, hierarchy) plus
// truncations and section-order damage, so the fuzzer starts at the
// interesting boundaries instead of random noise.
func FuzzDiskLayout(f *testing.F) {
	rng := xrand.New(970)
	data := vec.NewMatrix(120, 8)
	for i := 0; i < data.N; i++ {
		copy(data.Row(i), rng.GaussianVec(8))
	}
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 2, Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionNone, Quantize: QuantizeSQ8, Params: lshfunc.Params{M: 4, L: 1, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 2, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 1, W: 2}},
	} {
		ix, err := Build(data, opts, xrand.New(971))
		if err != nil {
			f.Fatal(err)
		}
		path := filepath.Join(f.TempDir(), "seed.v3")
		if err := ix.SaveDisk(path); err != nil {
			f.Fatal(err)
		}
		img, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		f.Add(img[:len(img)/2])
		f.Add(img[:diskPage+32])
		// Swap the first two section entries in the header (kinds stay
		// unique, offsets now lie about content).
		if len(img) > 96 {
			swapped := append([]byte{}, img...)
			copy(swapped[32:64], img[64:96])
			copy(swapped[64:96], img[32:64])
			f.Add(swapped)
		}
		// Flip one payload bit so only a section CRC can catch it.
		flipped := append([]byte{}, img...)
		flipped[len(flipped)-diskPage] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte("bilsh.Disk/3"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.v3")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Skip()
		}
		di, err := OpenDisk(path)
		if err != nil {
			return // rejected with an error: the only acceptable failure
		}
		// Accepted: the index must be fully usable without faulting.
		if di.N() > 0 {
			q := make([]float32, di.Dim())
			di.Query(q, 3)
		}
		di.Close()
	})
}
