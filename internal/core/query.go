package core

import (
	"runtime"
	"slices"
	"time"

	"bilsh/internal/knn"
	"bilsh/internal/lattice"
	"bilsh/internal/multiprobe"
	"bilsh/internal/topk"
	"bilsh/internal/vec"
)

// The read path. Every public query entry point loads the current snapshot
// exactly once and runs entirely against that view, so queries never take
// a lock and are unaffected by concurrent inserts, deletes and
// compactions. Batch entry points pin one snapshot for the whole batch,
// which keeps the hierarchy median rule internally consistent.

// StageTimings breaks one query's latency down by pipeline stage. The
// stages follow the paper's Section V pipeline; see the metrics catalogue
// in internal/core/metrics.go and docs/metrics.md.
type StageTimings struct {
	// Route is the level-1 descent (RP-tree / k-means group routing).
	Route time.Duration
	// Probe covers p-stable projections, lattice decoding and probe
	// sequence generation across all L tables.
	Probe time.Duration
	// Scan covers bucket lookups and the candidate-set union.
	Scan time.Duration
	// Rank covers exact distances over the short list and the top-k
	// merge (zero for CandidateList, which stops before ranking).
	Rank time.Duration
}

// QueryStats reports the work done for one query.
type QueryStats struct {
	// Group is the level-1 partition the query routed to.
	Group int
	// Candidates is |A(v)|: the number of distinct short-list candidates,
	// the numerator of the selectivity (Eq. 5).
	Candidates int
	// Scanned counts bucket entries before deduplication.
	Scanned int
	// Probes is the number of bucket lookups performed.
	Probes int
	// HierarchyLevel is the maximum hierarchy level visited (0 when the
	// home bucket sufficed or hierarchy is off).
	HierarchyLevel int
	// Timings is the per-stage wall-clock breakdown. Timings are
	// measured, not derived, so they vary run to run; every other field
	// is deterministic under a fixed seed.
	Timings StageTimings
}

// Query returns the approximate k nearest neighbors of q. For
// ProbeHierarchy the per-query bucket floor is Options.HierMinCandidates
// (default 2k); use QueryBatch for the paper's median rule.
//
// Invalid queries (wrong dimension, NaN or ±Inf components) return an
// empty result; callers that need the reason should validate with
// CheckVector first, as the HTTP handlers do.
//
// The hot path is allocation-free in steady state: per-query scratch state
// (projection and key buffers, the stamped dedup array, the top-k heap) is
// drawn from a pool, and only the returned result slices are allocated.
func (ix *Index) Query(q []float32, k int) (knn.Result, QueryStats) {
	sn := ix.loadSnap()
	if len(q) != sn.data.D || k < 1 {
		// Cheap structural check on the hot path; full NaN/Inf scanning is
		// the boundary's job (CheckVector) and garbage-in yields an empty
		// or meaningless result, never corruption. k < 1 asks for nothing
		// and gets exactly that.
		return knn.Result{}, QueryStats{}
	}
	s := ix.getScratch()
	defer ix.putScratch(s)
	return sn.query(q, k, s)
}

// query is the test seam behind Query: one snapshot load, no validation.
func (ix *Index) query(q []float32, k int, s *scratch) (knn.Result, QueryStats) {
	return ix.loadSnap().query(q, k, s)
}

func (sn *snapshot) query(q []float32, k int, s *scratch) (knn.Result, QueryStats) {
	rp := sn.defaultResolved(k)
	res, ps := sn.queryPlan(q, &rp, s)
	return res, ps.QueryStats
}

// QueryPlan answers one query under an explicit execution plan and reports
// the plan-level stats (budgets resolved, tables probed, early
// termination). QueryPlan(q, Plan{K: k}) is exactly Query(q, k): the
// default plan resolves to the index's built budgets with termination
// disabled, a property the equivalence tests pin byte-for-byte.
//
// Like Query, out-of-range plans never error here — resolution clamps
// them to the index's limits. Boundaries that owe callers an error run
// Plan.Validate first.
func (ix *Index) QueryPlan(q []float32, p Plan) (knn.Result, PlanStats) {
	sn := ix.loadSnap()
	if len(q) != sn.data.D || p.K < 1 {
		return knn.Result{}, PlanStats{}
	}
	s := ix.getScratch()
	defer ix.putScratch(s)
	rp := sn.resolve(p)
	return sn.queryPlan(q, &rp, s)
}

// queryPlan is the single execution core every public query entry point
// funnels through: gather under the resolved plan, rank, record.
func (sn *snapshot) queryPlan(q []float32, rp *resolvedPlan, s *scratch) (knn.Result, PlanStats) {
	start := time.Now()
	minCount := rp.hierMin
	if minCount <= 0 {
		minCount = 2 * rp.k
	}
	ps := sn.gatherPlan(q, rp, sn.opts.ProbeMode, minCount, s)
	rankStart := time.Now()
	res := sn.rankWith(q, rp.k, rp.rerank, s)
	ps.Timings.Rank = time.Since(rankStart)
	recordQuery(&ps.QueryStats, time.Since(start))
	recordPlan(&ps)
	return res, ps
}

// gather collects the candidate id set for q into s.cands under the
// index's probe mode. For ProbeHierarchy, hierMinCount is the bucket-size
// floor for sparse queries.
func (ix *Index) gather(q []float32, hierMinCount int, s *scratch) QueryStats {
	return ix.loadSnap().gather(q, hierMinCount, s)
}

func (sn *snapshot) gather(q []float32, hierMinCount int, s *scratch) QueryStats {
	return sn.gatherMode(q, hierMinCount, sn.opts.ProbeMode, s)
}

// gatherMode is the default-plan candidate-collection entry behind gather
// and plainShortListSize (which forces ProbeSingle regardless of the
// index's configured mode, per the Section VI-B4c median rule).
func (sn *snapshot) gatherMode(q []float32, hierMinCount int, mode ProbeMode, s *scratch) QueryStats {
	rp := sn.defaultResolved(0)
	ps := sn.gatherPlan(q, &rp, mode, hierMinCount, s)
	return ps.QueryStats
}

// gatherPlan is the shared probe loop behind every query path: it walks
// rp.tables hash tables in build order, probing each under mode and
// unioning candidates into s.cands. When the plan arms early termination
// (rp.term()), the shortlist plateau is checked after every bucket probe —
// per probe inside a ProbeMulti table, per table otherwise — and the loop
// stops as soon as a trigger fires; the default plan arms nothing and the
// loop is byte-identical to the fixed-budget one it replaced.
//
// The loop is resumable by construction: all cross-table state lives in
// the scratch (dedup stamps, candidate list) and the plateau counter in
// ts, so stopping after table t and continuing at t+1 would produce the
// same union — which is exactly what early termination exploits by simply
// not continuing.
func (sn *snapshot) gatherPlan(q []float32, rp *resolvedPlan, mode ProbeMode, hierMinCount int, s *scratch) PlanStats {
	if sn.sketches != nil {
		return sn.gatherHamming(q, rp, mode, s)
	}
	routeStart := time.Now()
	gi := sn.groupOf(q)
	g := sn.groups[gi]
	ps := PlanStats{
		QueryStats:     QueryStats{Group: gi},
		ResolvedTables: rp.tables,
		ResolvedProbes: rp.probes,
	}
	stats := &ps.QueryStats
	stats.Timings.Route = time.Since(routeStart)
	s.begin(sn)

	term := rp.term()
	var ts termState
	stop := false
	for t := 0; t < rp.tables && !stop; t++ {
		ps.TablesProbed = t + 1
		probeStart := time.Now()
		g.fam.Project(t, q, s.proj)
		switch mode {
		case ProbeSingle:
			s.hier.Code = g.lat.DecodeInto(s.hier.Code, s.proj)
			s.key = lattice.AppendKey(s.key[:0], s.hier.Code)
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			stats.Probes++
			sn.addCandidates(s, stats, g.tables[t].BucketBytes(s.key))
			sn.addOverlayCandidates(s, stats, gi, t)
			stats.Timings.Scan += time.Since(scanStart)
			stop = term && rp.stop(&ts, len(s.cands))

		case ProbeMulti:
			switch lat := g.lat.(type) {
			case *lattice.ZM:
				multiprobe.ZMProbesInto(&s.mp, lat, s.proj, rp.probes)
			case *lattice.E8:
				multiprobe.E8ProbesInto(&s.mp, lat, s.proj, rp.probes)
			case *lattice.Dn:
				multiprobe.DnProbesInto(&s.mp, lat, s.proj, rp.probes)
			}
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			for p := 0; p < s.mp.Probes(); p++ {
				stats.Probes++
				s.key = lattice.AppendKey(s.key[:0], s.mp.Probe(p))
				sn.addCandidates(s, stats, g.tables[t].BucketBytes(s.key))
				sn.addOverlayCandidates(s, stats, gi, t)
				if term && rp.stop(&ts, len(s.cands)) {
					stop = true
					break
				}
			}
			stats.Timings.Scan += time.Since(scanStart)

		case ProbeHierarchy:
			s.hier.Code = g.lat.DecodeInto(s.hier.Code, s.proj)
			s.key = lattice.AppendKey(s.key[:0], s.hier.Code)
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			stats.Probes++
			var level int
			// s.hier.Code holds the query code; AppendCandidates only
			// uses s.hier's Key/Code buffers for Morton keys and ancestor
			// codes, so pass the code itself from the scratch buffer.
			code := s.hier.Code
			if g.mortonH != nil {
				s.hierIDs, level = g.mortonH[t].AppendCandidates(s.hierIDs[:0], code, hierMinCount, &s.hier)
			} else {
				s.hierIDs, level = g.e8H[t].AppendCandidates(s.hierIDs[:0], code, hierMinCount, &s.hier)
			}
			if level > stats.HierarchyLevel {
				stats.HierarchyLevel = level
			}
			sn.addCandidates32(s, stats, s.hierIDs)
			// Overlay inserts are only reachable through their exact
			// bucket code until Compact folds them into the hierarchy.
			sn.addOverlayCandidates(s, stats, gi, t)
			stats.Timings.Scan += time.Since(scanStart)
			stop = term && rp.stop(&ts, len(s.cands))
		}
	}
	ps.TerminatedEarly = stop
	stats.Candidates = len(s.cands)
	// BucketBytes returns slices into pages owned by sn.mapped on mapped
	// snapshots; candidate ids are copied into scratch by now, but the
	// probe loop itself must not outlive the mapping.
	runtime.KeepAlive(sn)
	return ps
}

// CandidateList returns the deduplicated, id-sorted candidate list for q
// under the index's probe mode, for callers that run their own short-list
// engine (e.g. the Figure 4 harness feeding the parallel engines).
func (ix *Index) CandidateList(q []float32) ([]int, QueryStats) {
	sn := ix.loadSnap()
	s := ix.getScratch()
	defer ix.putScratch(s)
	minCount := sn.opts.HierMinCandidates
	if minCount <= 0 {
		minCount = 2 * sn.opts.TuneK
	}
	st := sn.gather(q, minCount, s)
	metCandLists.Inc()
	recordStages(&st)
	slices.Sort(s.cands)
	ids := make([]int, len(s.cands))
	for i, id := range s.cands {
		ids[i] = int(id)
	}
	return ids, st
}

// plainShortListSize returns the candidate count the query would see with
// single-bucket probing — the quantity whose batch median drives the
// hierarchical rule of Section VI-B4c. It runs the same collection core as
// real queries (gatherMode with ProbeSingle), so tombstone filtering and
// overlay handling cannot drift from the probe path.
func (ix *Index) plainShortListSize(q []float32, s *scratch) int {
	return ix.loadSnap().plainShortListSize(q, s)
}

func (sn *snapshot) plainShortListSize(q []float32, s *scratch) int {
	st := sn.gatherMode(q, 0, ProbeSingle, s)
	return st.Candidates
}

// ExactKNN computes exact k nearest neighbors by linear scan over the
// index's live rows — the self-contained ground-truth reference (the index
// stores its vectors, so no external data file is needed).
func (ix *Index) ExactKNN(q []float32, k int) knn.Result {
	if k < 1 {
		return knn.Result{}
	}
	sn := ix.loadSnap()
	if sn.sketches != nil {
		return sn.exactHamming(q, k)
	}
	total := sn.total()
	h := topk.New(k)
	for id := 0; id < total; id++ {
		if sn.isDeleted(id) {
			continue
		}
		d := vec.SqDist(sn.row(id), q)
		if h.Accepts(d) {
			h.Push(id, d)
		}
	}
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	// For mapped snapshots the scan above reads pages owned by sn.mapped;
	// keep the snapshot (and so the mapping) alive past the last read.
	runtime.KeepAlive(sn)
	return r
}

// rank is the serial short-list search over the candidate set in s.cands.
// Candidates are ranked in ascending id order: ids index a contiguous
// row-major matrix, so the scan walks memory forward (the linear-array
// layout of Section V-A) and the result is independent of collection
// order.
func (ix *Index) rank(q []float32, k int, s *scratch) knn.Result {
	return ix.loadSnap().rank(q, k, s)
}

func (sn *snapshot) rank(q []float32, k int, s *scratch) knn.Result {
	return sn.rankWith(q, k, 0, s)
}

// rankWith is rank with a per-plan re-rank factor override (0 keeps the
// index default; only meaningful under SQ8 quantization).
func (sn *snapshot) rankWith(q []float32, k, rerank int, s *scratch) knn.Result {
	if sn.sketches != nil {
		return sn.rankHamming(k, s)
	}
	slices.Sort(s.cands)
	h := s.topK(k)

	// Batch the base-matrix distances (ids below data.N, a sorted prefix
	// of cands); overlay rows and disk-backed fetches go one at a time.
	nBase := len(s.cands)
	if sn.hasOverlay() {
		nBase, _ = slices.BinarySearch(s.cands, int32(sn.data.N))
	}
	if cap(s.dists) < len(s.cands) {
		s.dists = make([]float64, len(s.cands))
	}
	s.dists = s.dists[:len(s.cands)]
	if sn.quant != nil {
		sn.rankBaseQuantized(q, k, rerank, s, h, nBase)
	} else {
		if sn.fetch == nil {
			vec.SqDistToRows(s.dists[:nBase], sn.data.Data, sn.data.D, s.cands[:nBase], q)
		} else {
			for i := 0; i < nBase; i++ {
				s.dists[i] = vec.SqDist(sn.fetch(int(s.cands[i])), q)
			}
		}
		for i := 0; i < nBase; i++ {
			if d := s.dists[i]; h.Accepts(d) {
				h.Push(int(s.cands[i]), d)
			}
		}
	}
	// Overlay rows live in memory as float32 regardless of quantization,
	// so they always rank exactly.
	for i := nBase; i < len(s.cands); i++ {
		if d := vec.SqDist(sn.row(int(s.cands[i])), q); h.Accepts(d) {
			h.Push(int(s.cands[i]), d)
		}
	}

	s.items = h.AppendSorted(s.items[:0])
	r := knn.Result{IDs: make([]int, len(s.items)), Dists: make([]float64, len(s.items))}
	for i, it := range s.items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	// Mapped snapshots: the distance kernels above read pages owned by
	// sn.mapped, which nothing else roots once the result is heap-copied.
	runtime.KeepAlive(sn)
	return r
}

// rankBaseQuantized is the quantized short-list scan: an approximate SQ8
// pass over all base candidates (reading 1 byte/dimension instead of 4),
// selection of the k×RerankFactor most promising ids, then an exact
// float32 re-rank of just those survivors before they enter the result
// heap. Returned distances are therefore always exact; quantization error
// can only cost recall at the selection edge, which the re-rank margin
// (and the golden quality gate) bounds. On a disk-backed index this is
// also the residency win: the codes are the only resident row bytes, and
// only the shortlist survivors touch disk.
func (sn *snapshot) rankBaseQuantized(q []float32, k, rerank int, s *scratch, h *topk.Heap, nBase int) {
	vec.SqDistToRowsSQ8(s.dists[:nBase], sn.quant, s.cands[:nBase], q)
	if rerank <= 0 {
		rerank = sn.opts.rerankFactor()
	}
	r := k * rerank
	if r < nBase {
		rh := s.rerankTopK(r)
		for i := 0; i < nBase; i++ {
			if d := s.dists[i]; rh.Accepts(d) {
				rh.Push(int(s.cands[i]), d)
			}
		}
		s.ritems = rh.AppendSorted(s.ritems[:0])
		if cap(s.rids) < len(s.ritems) {
			s.rids = make([]int32, 0, len(s.ritems))
		}
		s.rids = s.rids[:0]
		for _, it := range s.ritems {
			s.rids = append(s.rids, int32(it.ID))
		}
		// Ascending ids keep the exact pass streaming memory forward, like
		// the main scan.
		slices.Sort(s.rids)
	} else {
		// Shortlist no bigger than the re-rank budget: exact-rank all of it.
		s.rids = append(s.rids[:0], s.cands[:nBase]...)
	}
	if cap(s.rdists) < len(s.rids) {
		s.rdists = make([]float64, len(s.rids))
	}
	s.rdists = s.rdists[:len(s.rids)]
	if sn.fetch == nil {
		vec.SqDistToRows(s.rdists, sn.data.Data, sn.data.D, s.rids, q)
	} else {
		for i, id := range s.rids {
			s.rdists[i] = vec.SqDist(sn.fetch(int(id)), q)
		}
	}
	for i, id := range s.rids {
		if d := s.rdists[i]; h.Accepts(d) {
			h.Push(int(id), d)
		}
	}
}

// QueryBatch answers a whole query set against one snapshot. For
// ProbeHierarchy it implements the paper's protocol: compute every query's
// plain short-list size, take the batch median as the threshold, and climb
// the hierarchy only for queries below it. Other probe modes map Query
// over the batch. One scratch serves the whole batch.
func (ix *Index) QueryBatch(queries *vec.Matrix, k int) ([]knn.Result, []QueryStats) {
	metBatches.Inc()
	sn := ix.loadSnap()
	results := make([]knn.Result, queries.N)
	stats := make([]QueryStats, queries.N)
	if k < 1 {
		return results, stats
	}
	s := ix.getScratch()
	defer ix.putScratch(s)

	if sn.opts.ProbeMode != ProbeHierarchy {
		for qi := 0; qi < queries.N; qi++ {
			results[qi], stats[qi] = sn.query(queries.Row(qi), k, s)
		}
		return results, stats
	}

	sizes := make([]int, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		sizes[qi] = sn.plainShortListSize(queries.Row(qi), s)
	}
	median := medianInt(sizes)
	if median < 1 {
		median = 1
	}
	for qi := 0; qi < queries.N; qi++ {
		start := time.Now()
		q := queries.Row(qi)
		minCount := 1 // at least the home bucket group
		if sizes[qi] < median {
			// Sparse query: demand a group at least as populated as the
			// batch median.
			minCount = median
		}
		st := sn.gather(q, minCount, s)
		rankStart := time.Now()
		results[qi] = sn.rank(q, k, s)
		st.Timings.Rank = time.Since(rankStart)
		recordQuery(&st, time.Since(start))
		stats[qi] = st
	}
	return results, stats
}

// QueryBatchPlan is QueryBatch under an explicit plan, returning per-query
// PlanStats. QueryBatchPlan(queries, Plan{K: k}) matches QueryBatch
// byte-for-byte. Under ProbeHierarchy the paper's median rule still
// applies unless the plan sets HierMinCandidates, which replaces the rule
// with a fixed floor for every query in the batch (the sizing pass is then
// skipped entirely). The median sizing pass never terminates early: sizes
// feed the batch-wide threshold, so they must be budget-complete.
func (ix *Index) QueryBatchPlan(queries *vec.Matrix, p Plan) ([]knn.Result, []PlanStats) {
	metBatches.Inc()
	sn := ix.loadSnap()
	results := make([]knn.Result, queries.N)
	stats := make([]PlanStats, queries.N)
	if p.K < 1 {
		return results, stats
	}
	s := ix.getScratch()
	defer ix.putScratch(s)
	rp := sn.resolve(p)

	// The plan's floor (not the index default) decides whether the median
	// rule runs: QueryBatch applies the rule whenever the mode is
	// hierarchy, so the default plan must too.
	if sn.opts.ProbeMode != ProbeHierarchy || p.HierMinCandidates > 0 {
		for qi := 0; qi < queries.N; qi++ {
			results[qi], stats[qi] = sn.queryPlan(queries.Row(qi), &rp, s)
		}
		return results, stats
	}

	sizeRP := rp
	sizeRP.stableProbes, sizeRP.maxCandidates = 0, 0
	sizes := make([]int, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		sizes[qi] = sn.gatherPlan(queries.Row(qi), &sizeRP, ProbeSingle, 0, s).Candidates
	}
	median := medianInt(sizes)
	if median < 1 {
		median = 1
	}
	for qi := 0; qi < queries.N; qi++ {
		start := time.Now()
		q := queries.Row(qi)
		minCount := 1 // at least the home bucket group
		if sizes[qi] < median {
			minCount = median
		}
		ps := sn.gatherPlan(q, &rp, ProbeHierarchy, minCount, s)
		rankStart := time.Now()
		results[qi] = sn.rankWith(q, rp.k, rp.rerank, s)
		ps.Timings.Rank = time.Since(rankStart)
		recordQuery(&ps.QueryStats, time.Since(start))
		recordPlan(&ps)
		stats[qi] = ps
	}
	return results, stats
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := slices.Clone(xs)
	slices.Sort(cp)
	return cp[len(cp)/2]
}
