package core

import (
	"sort"
	"time"

	"bilsh/internal/knn"
	"bilsh/internal/lattice"
	"bilsh/internal/multiprobe"
	"bilsh/internal/topk"
	"bilsh/internal/vec"
)

// StageTimings breaks one query's latency down by pipeline stage. The
// stages follow the paper's Section V pipeline; see the metrics catalogue
// in internal/core/metrics.go and docs/metrics.md.
type StageTimings struct {
	// Route is the level-1 descent (RP-tree / k-means group routing).
	Route time.Duration
	// Probe covers p-stable projections, lattice decoding and probe
	// sequence generation across all L tables.
	Probe time.Duration
	// Scan covers bucket lookups and the candidate-set union.
	Scan time.Duration
	// Rank covers exact distances over the short list and the top-k
	// merge (zero for CandidateList, which stops before ranking).
	Rank time.Duration
}

// QueryStats reports the work done for one query.
type QueryStats struct {
	// Group is the level-1 partition the query routed to.
	Group int
	// Candidates is |A(v)|: the number of distinct short-list candidates,
	// the numerator of the selectivity (Eq. 5).
	Candidates int
	// Scanned counts bucket entries before deduplication.
	Scanned int
	// Probes is the number of bucket lookups performed.
	Probes int
	// HierarchyLevel is the maximum hierarchy level visited (0 when the
	// home bucket sufficed or hierarchy is off).
	HierarchyLevel int
	// Timings is the per-stage wall-clock breakdown. Timings are
	// measured, not derived, so they vary run to run; every other field
	// is deterministic under a fixed seed.
	Timings StageTimings
}

// Query returns the approximate k nearest neighbors of q. For
// ProbeHierarchy the per-query bucket floor is Options.HierMinCandidates
// (default 2k); use QueryBatch for the paper's median rule.
func (ix *Index) Query(q []float32, k int) (knn.Result, QueryStats) {
	start := time.Now()
	minCount := ix.opts.HierMinCandidates
	if minCount <= 0 {
		minCount = 2 * k
	}
	cands, stats := ix.gather(q, minCount)
	rankStart := time.Now()
	res := ix.rank(q, cands, k)
	stats.Timings.Rank = time.Since(rankStart)
	recordQuery(&stats, time.Since(start))
	return res, stats
}

// gather collects the candidate id set for q. For ProbeHierarchy,
// hierMinCount is the bucket-size floor for sparse queries.
func (ix *Index) gather(q []float32, hierMinCount int) (map[int]struct{}, QueryStats) {
	routeStart := time.Now()
	gi := ix.GroupOf(q)
	g := ix.groups[gi]
	stats := QueryStats{Group: gi}
	stats.Timings.Route = time.Since(routeStart)
	set := make(map[int]struct{})
	proj := make([]float64, ix.opts.Params.M)

	add := func(ids []int) {
		for _, id := range ids {
			if ix.isDeleted(id) {
				continue
			}
			stats.Scanned++
			set[id] = struct{}{}
		}
	}

	for t := 0; t < ix.opts.Params.L; t++ {
		probeStart := time.Now()
		g.fam.Project(t, q, proj)
		switch ix.opts.ProbeMode {
		case ProbeSingle:
			code := g.lat.Decode(proj)
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			stats.Probes++
			key := lattice.Key(code)
			add(g.tables[t].Bucket(key))
			add(ix.overlayBucket(gi, t, key))
			stats.Timings.Scan += time.Since(scanStart)

		case ProbeMulti:
			var probes [][]int32
			switch lat := g.lat.(type) {
			case *lattice.ZM:
				probes = multiprobe.ZMProbes(lat, proj, ix.opts.Probes)
			case *lattice.E8:
				probes = multiprobe.E8Probes(lat, proj, ix.opts.Probes)
			case *lattice.Dn:
				probes = multiprobe.DnProbes(lat, proj, ix.opts.Probes)
			}
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			for _, code := range probes {
				stats.Probes++
				key := lattice.Key(code)
				add(g.tables[t].Bucket(key))
				add(ix.overlayBucket(gi, t, key))
			}
			stats.Timings.Scan += time.Since(scanStart)

		case ProbeHierarchy:
			code := g.lat.Decode(proj)
			stats.Timings.Probe += time.Since(probeStart)
			scanStart := time.Now()
			stats.Probes++
			var ids []int
			var level int
			if g.mortonH != nil {
				ids, level = g.mortonH[t].Candidates(code, hierMinCount)
			} else {
				ids, level = g.e8H[t].Candidates(code, hierMinCount)
			}
			if level > stats.HierarchyLevel {
				stats.HierarchyLevel = level
			}
			add(ids)
			// Overlay inserts are only reachable through their exact
			// bucket code until Compact folds them into the hierarchy.
			add(ix.overlayBucket(gi, t, lattice.Key(code)))
			stats.Timings.Scan += time.Since(scanStart)
		}
	}
	stats.Candidates = len(set)
	return set, stats
}

// CandidateList returns the deduplicated, id-sorted candidate list for q
// under the index's probe mode, for callers that run their own short-list
// engine (e.g. the Figure 4 harness feeding the parallel engines).
func (ix *Index) CandidateList(q []float32) ([]int, QueryStats) {
	minCount := ix.opts.HierMinCandidates
	if minCount <= 0 {
		minCount = 2 * ix.opts.TuneK
	}
	set, st := ix.gather(q, minCount)
	metCandLists.Inc()
	recordStages(&st)
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, st
}

// plainShortListSize returns the candidate count the query would see with
// single-bucket probing — the quantity whose batch median drives the
// hierarchical rule of Section VI-B4c.
func (ix *Index) plainShortListSize(q []float32) int {
	gi := ix.GroupOf(q)
	g := ix.groups[gi]
	proj := make([]float64, ix.opts.Params.M)
	set := make(map[int]struct{})
	for t := 0; t < ix.opts.Params.L; t++ {
		g.fam.Project(t, q, proj)
		key := lattice.Key(g.lat.Decode(proj))
		for _, id := range g.tables[t].Bucket(key) {
			if !ix.isDeleted(id) {
				set[id] = struct{}{}
			}
		}
		for _, id := range ix.overlayBucket(gi, t, key) {
			if !ix.isDeleted(id) {
				set[id] = struct{}{}
			}
		}
	}
	return len(set)
}

// ExactKNN computes exact k nearest neighbors by linear scan over the
// index's live rows — the self-contained ground-truth reference (the index
// stores its vectors, so no external data file is needed).
func (ix *Index) ExactKNN(q []float32, k int) knn.Result {
	total := ix.data.N
	if ix.dynamic != nil {
		total += len(ix.dynamic.extra)
	}
	h := topk.New(k)
	for id := 0; id < total; id++ {
		if ix.isDeleted(id) {
			continue
		}
		d := vec.SqDist(ix.row(id), q)
		if h.Accepts(d) {
			h.Push(id, d)
		}
	}
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	return r
}

// rank is the serial short-list search over a candidate set.
func (ix *Index) rank(q []float32, cands map[int]struct{}, k int) knn.Result {
	h := topk.New(k)
	for id := range cands {
		d := vec.SqDist(ix.row(id), q)
		if h.Accepts(d) {
			h.Push(id, d)
		}
	}
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	return r
}

// QueryBatch answers a whole query set. For ProbeHierarchy it implements
// the paper's protocol: compute every query's plain short-list size, take
// the batch median as the threshold, and climb the hierarchy only for
// queries below it. Other probe modes map Query over the batch.
func (ix *Index) QueryBatch(queries *vec.Matrix, k int) ([]knn.Result, []QueryStats) {
	metBatches.Inc()
	results := make([]knn.Result, queries.N)
	stats := make([]QueryStats, queries.N)

	if ix.opts.ProbeMode != ProbeHierarchy {
		for qi := 0; qi < queries.N; qi++ {
			results[qi], stats[qi] = ix.Query(queries.Row(qi), k)
		}
		return results, stats
	}

	sizes := make([]int, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		sizes[qi] = ix.plainShortListSize(queries.Row(qi))
	}
	median := medianInt(sizes)
	if median < 1 {
		median = 1
	}
	for qi := 0; qi < queries.N; qi++ {
		start := time.Now()
		q := queries.Row(qi)
		minCount := 1 // at least the home bucket group
		if sizes[qi] < median {
			// Sparse query: demand a group at least as populated as the
			// batch median.
			minCount = median
		}
		cands, st := ix.gather(q, minCount)
		rankStart := time.Now()
		results[qi] = ix.rank(q, cands, k)
		st.Timings.Rank = time.Since(rankStart)
		recordQuery(&st, time.Since(start))
		stats[qi] = st
	}
	return results, stats
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}
