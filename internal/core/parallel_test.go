package core

import (
	"reflect"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

func TestQueryBatchParallelMatchesSerial(t *testing.T) {
	data := testData(t, 500, 16, 61)
	queries := testData(t, 40, 16, 62)
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 4, Params: lshfunc.Params{M: 4, L: 3, W: 3}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeMulti, Probes: 10,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionNone, ProbeMode: ProbeHierarchy,
			Params: lshfunc.Params{M: 4, L: 2, W: 1.5}},
	} {
		ix, err := Build(data, opts, xrand.New(63))
		if err != nil {
			t.Fatal(err)
		}
		serialR, serialS := ix.QueryBatch(queries, 7)
		clearTimings(serialS)
		for _, workers := range []int{1, 2, 5, 0} {
			parR, parS := ix.QueryBatchParallel(queries, 7, workers)
			if !reflect.DeepEqual(serialR, parR) {
				t.Fatalf("probe=%v workers=%d: results differ from serial", opts.ProbeMode, workers)
			}
			// Stage timings are measured wall-clock, so only the
			// deterministic work counts are compared.
			clearTimings(parS)
			if !reflect.DeepEqual(serialS, parS) {
				t.Fatalf("probe=%v workers=%d: stats differ from serial", opts.ProbeMode, workers)
			}
		}
	}
}

func TestQueryBatchParallelConcurrentReaders(t *testing.T) {
	// Run with -race: many goroutines querying one index concurrently.
	data := testData(t, 300, 12, 64)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 3}}, xrand.New(65))
	if err != nil {
		t.Fatal(err)
	}
	queries := testData(t, 64, 12, 66)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ix.QueryBatchParallel(queries, 5, 3)
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestQueryBatchParallelEmptyBatch(t *testing.T) {
	data := testData(t, 100, 8, 67)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(68))
	if err != nil {
		t.Fatal(err)
	}
	empty := testData(t, 1, 8, 69).Subset(nil)
	r, s := ix.QueryBatchParallel(empty, 5, 4)
	if len(r) != 0 || len(s) != 0 {
		t.Fatal("empty batch must produce empty outputs")
	}
}

// clearTimings zeroes the measured (nondeterministic) part of each stat so
// DeepEqual compares only the deterministic work counts.
func clearTimings(stats []QueryStats) {
	for i := range stats {
		stats[i].Timings = StageTimings{}
	}
}
