package core

import (
	"testing"
	"time"

	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// TestQueryRecordsMetrics checks that the hot path populates stage
// timings and aggregates into the process-wide registry. Counters are
// compared as deltas because the default registry is shared across tests.
func TestQueryRecordsMetrics(t *testing.T) {
	data := testData(t, 400, 12, 91)
	// Indexed rows as queries: each query's home bucket holds at least
	// itself, so results are guaranteed non-empty.
	queries := data.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 2}}, xrand.New(93))
	if err != nil {
		t.Fatal(err)
	}

	q0 := metQueries.Value()
	b0 := metBatches.Value()
	h0 := metQuerySeconds.Count()
	s0 := metStageProbe.Count()

	res, st := ix.Query(queries.Row(0), 5)
	if len(res.IDs) == 0 {
		t.Fatal("query returned nothing")
	}
	if st.Timings.Route < 0 || st.Timings.Probe <= 0 || st.Timings.Scan <= 0 || st.Timings.Rank <= 0 {
		t.Fatalf("stage timings not populated: %+v", st.Timings)
	}
	total := st.Timings.Route + st.Timings.Probe + st.Timings.Scan + st.Timings.Rank
	if total > time.Minute {
		t.Fatalf("implausible stage total %v", total)
	}

	ix.QueryBatch(queries, 5)
	ix.QueryBatchParallel(queries, 5, 2)

	if got := metQueries.Value() - q0; got != 21 {
		t.Errorf("queries counter moved by %d, want 21 (1 + 10 + 10)", got)
	}
	if got := metBatches.Value() - b0; got != 2 {
		t.Errorf("batches counter moved by %d, want 2", got)
	}
	if got := metQuerySeconds.Count() - h0; got != 21 {
		t.Errorf("query latency histogram grew by %d, want 21", got)
	}
	if got := metStageProbe.Count() - s0; got != 21 {
		t.Errorf("probe stage histogram grew by %d, want 21", got)
	}
}

func TestDynamicOpsRecordMetrics(t *testing.T) {
	data := testData(t, 200, 8, 94)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(95))
	if err != nil {
		t.Fatal(err)
	}
	i0, d0, m0, c0 := metInserts.Value(), metDeletes.Value(), metDeleteMisses.Value(), metCompacts.Value()

	if _, err := ix.Insert(data.Row(0)); err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(3) {
		t.Fatal("Delete(3) should succeed")
	}
	if ix.Delete(3) {
		t.Fatal("double delete should fail")
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}

	if got := metInserts.Value() - i0; got != 1 {
		t.Errorf("inserts moved by %d, want 1", got)
	}
	if got := metDeletes.Value() - d0; got != 1 {
		t.Errorf("deletes moved by %d, want 1", got)
	}
	if got := metDeleteMisses.Value() - m0; got != 1 {
		t.Errorf("delete misses moved by %d, want 1", got)
	}
	if got := metCompacts.Value() - c0; got != 1 {
		t.Errorf("compactions moved by %d, want 1", got)
	}
}
