package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"unsafe"

	"bilsh/internal/xrand"
)

// fvecsBytes hand-assembles an fvecs stream of n vectors of dimension d
// with distinguishable payloads.
func fvecsBytes(n, d int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		binary.Write(&buf, binary.LittleEndian, int32(d))
		for j := 0; j < d; j++ {
			binary.Write(&buf, binary.LittleEndian, float32(i*d+j))
		}
	}
	return buf.Bytes()
}

// TestTruncatedErrors pins the structured truncation error across all
// three readers, for both mid-header and mid-body cuts.
func TestTruncatedErrors(t *testing.T) {
	full := fvecsBytes(3, 4) // 3 vectors x (4 + 16) bytes
	var bv bytes.Buffer
	bv.Write([]byte{3, 0, 0, 0, 1, 2, 3}) // one complete bvecs vector
	bv.Write([]byte{3, 0, 0, 0, 1})       // second vector cut mid-body
	var iv bytes.Buffer
	WriteIvecs(&iv, [][]int32{{7, 8}})
	iv.Write([]byte{2, 0}) // second header cut after 2 bytes

	cases := []struct {
		name   string
		read   func(r io.Reader) error
		data   []byte
		vector int
		offset int64
		format string
	}{
		{"fvecs/body", func(r io.Reader) error { _, err := ReadFvecs(r, 0); return err },
			full[:25], 1, 25, "fvecs"},
		{"fvecs/header", func(r io.Reader) error { _, err := ReadFvecs(r, 0); return err },
			full[:22], 1, 22, "fvecs"},
		{"bvecs/body", func(r io.Reader) error { _, err := ReadBvecs(r, 0); return err },
			bv.Bytes(), 1, 12, "bvecs"},
		{"ivecs/header", func(r io.Reader) error { _, err := ReadIvecs(r, 0); return err },
			iv.Bytes(), 1, 14, "ivecs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.read(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("truncated stream accepted")
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("error %v does not unwrap to io.ErrUnexpectedEOF", err)
			}
			var te *TruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("error %v is not a *TruncatedError", err)
			}
			if te.Format != tc.format || te.Vector != tc.vector || te.Offset != tc.offset {
				t.Fatalf("got %+v, want {%s %d %d}", te, tc.format, tc.vector, tc.offset)
			}
			want := "truncated at vector"
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("message %q lacks %q", err.Error(), want)
			}
		})
	}
}

// TestReadFvecsMaxNPeeksNextHeader pins the maxN contract: an early stop
// is only valid when the unread tail continues with the same dimension.
func TestReadFvecsMaxNPeeksNextHeader(t *testing.T) {
	clean := fvecsBytes(5, 4)
	if m, err := ReadFvecs(bytes.NewReader(clean), 3); err != nil || m.N != 3 {
		t.Fatalf("uniform tail: got %v rows, err %v", m, err)
	}

	// Same 3-vector prefix, but the 4th vector switches dimension.
	mixed := append(append([]byte{}, fvecsBytes(3, 4)...), fvecsBytes(1, 5)...)
	if _, err := ReadFvecs(bytes.NewReader(mixed), 3); err == nil {
		t.Fatal("dimension switch past maxN went undetected")
	} else if !strings.Contains(err.Error(), "past read limit") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Reading the same stream without a limit hits the ordinary ragged-dim error.
	if _, err := ReadFvecs(bytes.NewReader(mixed), 0); err == nil {
		t.Fatal("ragged stream accepted")
	}

	// A short tail (< one header) after the limit is tolerated: the limit
	// made it unreachable and it may be padding.
	short := append(append([]byte{}, fvecsBytes(3, 4)...), 0x4)
	if m, err := ReadFvecs(bytes.NewReader(short), 3); err != nil || m.N != 3 {
		t.Fatalf("short tail: rows %v err %v", m, err)
	}

	// Same contract for bvecs.
	var bv bytes.Buffer
	bv.Write([]byte{2, 0, 0, 0, 1, 2})
	bv.Write([]byte{3, 0, 0, 0, 1, 2, 3})
	if _, err := ReadBvecs(bytes.NewReader(bv.Bytes()), 1); err == nil {
		t.Fatal("bvecs dimension switch past maxN went undetected")
	}
}

// TestReadFvecsFlatBuffer asserts the reader holds one flat buffer: with
// a size-hinting source the whole parse allocates little more than the
// returned matrix itself (the old reader's [][]float32 staging plus
// binary.Read scratch cost ~3x the payload).
func TestReadFvecsFlatBuffer(t *testing.T) {
	const n, d = 1024, 64
	payload := int64(n * d * 4) // 256 KiB of float32s
	data := fvecsBytes(n, d)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	m, err := ReadFvecs(bytes.NewReader(data), 0)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != n || m.D != d {
		t.Fatalf("shape %dx%d", m.N, m.D)
	}
	for i := range m.Data {
		if m.Data[i] != float32(i) {
			t.Fatalf("element %d = %g", i, m.Data[i])
		}
	}
	alloc := int64(after.TotalAlloc - before.TotalAlloc)
	// Budget: the matrix itself, the 64 KiB bufio window, the row scratch,
	// and slack. Anything near 2x payload means a second copy came back.
	if budget := payload + 96*1024; alloc > budget {
		t.Fatalf("ReadFvecs allocated %d bytes for a %d-byte payload (budget %d); reader is staging a second copy", alloc, payload, budget)
	}
}

// TestReadIvecsFlatViews asserts ivecs rows are views into one backing
// array, in order, with correct contents.
func TestReadIvecsFlatViews(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {4}, {5, 6}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows", len(got))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d length %d", i, len(got[i]))
		}
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	// Consecutive rows share one backing array: row 1 starts exactly
	// len(row 0) elements after row 0.
	base := uintptr(unsafe.Pointer(&got[0][0]))
	next := uintptr(unsafe.Pointer(&got[1][0]))
	if next != base+uintptr(len(got[0]))*unsafe.Sizeof(int32(0)) {
		t.Fatal("rows are not views into a single flat buffer")
	}
}

// TestScanFvecsTruncated checks the streaming scanner reports structured
// truncation too (it used to surface a bare binary.Read error).
func TestScanFvecsTruncated(t *testing.T) {
	path := t.TempDir() + "/trunc.fvecs"
	m := Uniform(4, 6, xrand.New(2))
	if err := SaveFvecsFile(path, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	n, _, err := ScanFvecs(path, func(int, []float32) error { return nil })
	if err == nil {
		t.Fatal("truncated file scanned cleanly")
	}
	var te *TruncatedError
	if !errors.As(err, &te) || te.Vector != 3 {
		t.Fatalf("err %v, want TruncatedError at vector 3", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d complete rows before the cut, want 3", n)
	}
}
