package dataset

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFvecs asserts the reader never panics or over-allocates on
// arbitrary input, and that whatever it accepts round-trips.
func FuzzReadFvecs(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteFvecs(&seed, Uniform(3, 4, rngFor(1))); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3})
	// Truncation seeds: header cut short, body cut short, clean vector
	// followed by a half header.
	f.Add([]byte{4, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 128, 63, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 128, 63, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFvecs(bytes.NewReader(data), 100)
		if err != nil {
			var te *TruncatedError
			if errors.As(err, &te) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("TruncatedError %v does not unwrap to io.ErrUnexpectedEOF", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteFvecs(&buf, m); err != nil {
			t.Fatalf("accepted matrix failed to re-encode: %v", err)
		}
		m2, err := ReadFvecs(&buf, 0)
		if err != nil {
			t.Fatalf("re-encoded matrix failed to parse: %v", err)
		}
		if m2.N != m.N || m2.D != m.D {
			t.Fatalf("round trip changed shape %dx%d -> %dx%d", m.N, m.D, m2.N, m2.D)
		}
	})
}

// FuzzReadIvecs asserts the ivecs reader is panic-free.
func FuzzReadIvecs(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteIvecs(&seed, [][]int32{{1, 2}, {3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{2, 0, 0, 0, 1, 0, 0, 0})       // body cut after one of two ids
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0, 3, 0}) // clean vector + half header
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ReadIvecs(bytes.NewReader(data), 100)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteIvecs(&buf, rows); err != nil {
			t.Fatalf("accepted rows failed to re-encode: %v", err)
		}
	})
}
