// Package dataset provides the workloads the experiments run on.
//
// The paper evaluates on GIST descriptors of the LabelMe (200k x dim-512)
// and Tiny Images (80M x dim-384) collections. Those corpora are not
// redistributable here, so this package supplies the documented
// substitution: a synthetic *clustered-manifold* generator producing the
// structural properties the paper's effects depend on —
//
//   - the data is a union of clusters (images of similar objects),
//   - each cluster lies near a low intrinsic-dimension subspace embedded in
//     a much higher ambient dimension (the manifold assumption RP-trees
//     exploit),
//   - clusters are anisotropic ("flat", large aspect ratio), which is what
//     creates the projection-induced variance Bi-level LSH removes,
//   - cluster populations follow a power law (natural image statistics).
//
// Real data can still be used: fvecs/bvecs readers are provided in io.go.
package dataset

import (
	"fmt"
	"math"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// ClusteredSpec configures the synthetic clustered-manifold generator.
type ClusteredSpec struct {
	N            int     // total number of points
	D            int     // ambient dimension (e.g. 64..512)
	Clusters     int     // number of latent clusters
	IntrinsicDim int     // dimension of each cluster's local subspace
	Aspect       float64 // ratio of largest to smallest subspace axis scale (>=1)
	NoiseSigma   float64 // isotropic ambient noise added to every point
	Spread       float64 // scale of cluster center placement
	PowerLaw     float64 // cluster-size skew exponent (0 = equal sizes)
	// ScaleSpread varies the radius across clusters: each cluster's axis
	// scales are multiplied by a factor drawn log-uniformly from
	// [1/ScaleSpread, ScaleSpread]. 1 (or 0) disables it. This models the
	// "interior differences within a large dataset" the paper's per-cell
	// parameter tuning exploits — compact and diffuse clusters coexisting,
	// so no single global bucket width fits all of them.
	ScaleSpread float64
}

// DefaultClusteredSpec returns the laptop-scale stand-in for the paper's
// GIST workloads: n points of dimension d in 32 flat clusters of intrinsic
// dimension 8 with a 6:1 aspect ratio.
func DefaultClusteredSpec(n, d int) ClusteredSpec {
	return ClusteredSpec{
		N:            n,
		D:            d,
		Clusters:     32,
		IntrinsicDim: 8,
		Aspect:       6,
		NoiseSigma:   0.05,
		Spread:       6,
		PowerLaw:     0.3,
		ScaleSpread:  4,
	}
}

func (s ClusteredSpec) validate() error {
	switch {
	case s.N <= 0:
		return fmt.Errorf("dataset: N = %d, must be positive", s.N)
	case s.D <= 0:
		return fmt.Errorf("dataset: D = %d, must be positive", s.D)
	case s.Clusters <= 0:
		return fmt.Errorf("dataset: Clusters = %d, must be positive", s.Clusters)
	case s.IntrinsicDim <= 0 || s.IntrinsicDim > s.D:
		return fmt.Errorf("dataset: IntrinsicDim = %d, must be in [1,%d]", s.IntrinsicDim, s.D)
	case s.Aspect < 1:
		return fmt.Errorf("dataset: Aspect = %g, must be >= 1", s.Aspect)
	}
	return nil
}

// Clustered generates a dataset according to spec. The same seed always
// yields the same dataset. The returned labels give each point's latent
// cluster, which the tests use to check that RP-tree partitions align with
// ground-truth structure.
func Clustered(spec ClusteredSpec, rng *xrand.RNG) (*vec.Matrix, []int, error) {
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	m := vec.NewMatrix(spec.N, spec.D)
	labels := make([]int, spec.N)

	sizes := clusterSizes(spec.N, spec.Clusters, spec.PowerLaw, rng.Split(0))
	crng := rng.Split(1)

	row := 0
	for c := 0; c < spec.Clusters; c++ {
		g := crng.Split(int64(c))
		center := g.GaussianVec(spec.D)
		vec.Scale(center, spec.Spread)

		// Per-cluster radius multiplier (log-uniform) for heterogeneity.
		radius := 1.0
		if spec.ScaleSpread > 1 {
			lo := math.Log(1 / spec.ScaleSpread)
			hi := math.Log(spec.ScaleSpread)
			radius = math.Exp(g.Uniform(lo, hi))
		}

		// Random orthonormal-ish basis for the local subspace: independent
		// Gaussian directions are near-orthogonal in high D, which is all
		// the anisotropy model needs.
		basis := make([][]float32, spec.IntrinsicDim)
		scales := make([]float64, spec.IntrinsicDim)
		for j := range basis {
			basis[j] = g.UnitVec(spec.D)
			// Geometric interpolation from Aspect down to 1 across axes
			// creates the "flat" shape of Figure 2(a).
			t := 0.0
			if spec.IntrinsicDim > 1 {
				t = float64(j) / float64(spec.IntrinsicDim-1)
			}
			scales[j] = radius * spec.Aspect * math.Pow(1/spec.Aspect, t)
		}

		for i := 0; i < sizes[c]; i++ {
			p := m.Row(row)
			copy(p, center)
			for j, b := range basis {
				vec.AXPY(p, g.NormFloat64()*scales[j], b)
			}
			if spec.NoiseSigma > 0 {
				for d := range p {
					p[d] += float32(g.NormFloat64() * spec.NoiseSigma)
				}
			}
			labels[row] = c
			row++
		}
	}
	return m, labels, nil
}

// clusterSizes splits n into parts proportional to (rank)^-alpha, with every
// cluster guaranteed at least one point when n >= clusters.
func clusterSizes(n, clusters int, alpha float64, rng *xrand.RNG) []int {
	weights := make([]float64, clusters)
	var total float64
	for i := range weights {
		w := math.Pow(float64(i+1), -alpha)
		// Jitter so different seeds give different skews.
		w *= 0.5 + rng.Float64()
		weights[i] = w
		total += w
	}
	sizes := make([]int, clusters)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / total)
		assigned += sizes[i]
	}
	// Distribute the rounding remainder, then guarantee non-empty clusters.
	for i := 0; assigned < n; i = (i + 1) % clusters {
		sizes[i]++
		assigned++
	}
	if n >= clusters {
		for i := range sizes {
			for sizes[i] == 0 {
				j := rng.Intn(clusters)
				if sizes[j] > 1 {
					sizes[j]--
					sizes[i]++
				}
			}
		}
	}
	return sizes
}

// Uniform generates n points uniformly in [0,1]^d — the unstructured
// control workload (no clusters, full intrinsic dimension).
func Uniform(n, d int, rng *xrand.RNG) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.Float64())
	}
	return m
}

// Gaussian generates n points from a single isotropic N(0, sigma^2 I_d).
func Gaussian(n, d int, sigma float64, rng *xrand.RNG) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * sigma)
	}
	return m
}

// Split divides data into a training matrix and a query matrix, mirroring
// the paper's protocol of indexing 100k items and querying with a disjoint
// 100k from the same collection. Points are assigned by a random
// permutation; nQuery rows become queries.
func Split(data *vec.Matrix, nQuery int, rng *xrand.RNG) (train, queries *vec.Matrix) {
	if nQuery >= data.N {
		panic(fmt.Sprintf("dataset: Split nQuery=%d >= N=%d", nQuery, data.N))
	}
	perm := rng.Perm(data.N)
	queries = data.Subset(perm[:nQuery])
	train = data.Subset(perm[nQuery:])
	return train, queries
}
