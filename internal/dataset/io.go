package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"bilsh/internal/durable"
	"bilsh/internal/vec"
)

// This file implements the .fvecs / .bvecs / .ivecs formats used by the
// standard ANN benchmark collections (TexMex/GIST, SIFT1M, ...), so real
// GIST descriptors — the paper's actual workload — can be dropped into any
// experiment in place of the synthetic generator.
//
// Format: each vector is stored as a little-endian int32 dimension d
// followed by d components (float32 for fvecs, uint8 for bvecs, int32 for
// ivecs).
//
// The readers stream each vector directly into a single flat buffer (the
// matrix that is ultimately returned), growing it in place. They never
// build an intermediate [][]float32, so peak memory is one copy of the
// data, not two. When the source's remaining length is cheaply knowable
// (bytes.Reader, *os.File, any io.Seeker) the buffer is pre-grown to the
// exact row count and the read performs a single allocation.

// maxSaneDim bounds the per-vector dimension so a corrupt header cannot
// drive a multi-gigabyte allocation.
const maxSaneDim = 1 << 20

// TruncatedError reports a stream that ended in the middle of a vector:
// either inside a dimension header or before the advertised number of
// components arrived. Vector is the index of the vector being read and
// Offset the byte position at which the stream stopped. It unwraps to
// io.ErrUnexpectedEOF so callers can errors.Is-match truncation generically.
type TruncatedError struct {
	Format string // "fvecs", "bvecs", or "ivecs"
	Vector int    // index of the vector that was being read
	Offset int64  // byte offset at which the stream ended
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("dataset: %s file truncated at vector %d, byte offset %d", e.Format, e.Vector, e.Offset)
}

func (e *TruncatedError) Unwrap() error { return io.ErrUnexpectedEOF }

// vecReader tracks position through a *vecs stream so truncation errors
// can name the exact vector and byte offset.
type vecReader struct {
	br     *bufio.Reader
	format string
	off    int64 // bytes consumed so far
	n      int   // vectors fully read so far
	hdr    [4]byte
}

func newVecReader(r io.Reader, format string) *vecReader {
	return &vecReader{br: bufio.NewReaderSize(r, 1<<16), format: format}
}

// header reads the next int32 dimension header. io.EOF means a clean
// end-of-stream at a vector boundary; truncation mid-header surfaces as a
// *TruncatedError.
func (vr *vecReader) header() (int32, error) {
	n, err := io.ReadFull(vr.br, vr.hdr[:])
	vr.off += int64(n)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return 0, &TruncatedError{Format: vr.format, Vector: vr.n, Offset: vr.off}
	}
	if err != nil {
		return 0, fmt.Errorf("dataset: %s header at vector %d: %w", vr.format, vr.n, err)
	}
	return int32(binary.LittleEndian.Uint32(vr.hdr[:])), nil
}

// body fills dst with the current vector's raw component bytes.
func (vr *vecReader) body(dst []byte) error {
	n, err := io.ReadFull(vr.br, dst)
	vr.off += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return &TruncatedError{Format: vr.format, Vector: vr.n, Offset: vr.off}
	}
	if err != nil {
		return fmt.Errorf("dataset: %s body at vector %d: %w", vr.format, vr.n, err)
	}
	vr.n++
	return nil
}

// checkDim validates one dimension header against the stream's first.
func (vr *vecReader) checkDim(d int32, dim int) (int, error) {
	if d <= 0 || d > maxSaneDim {
		return 0, fmt.Errorf("dataset: %s vector %d has bad dimension %d", vr.format, vr.n, d)
	}
	if dim != 0 && int(d) != dim {
		return 0, fmt.Errorf("dataset: %s vector %d dimension %d != %d", vr.format, vr.n, d, dim)
	}
	return int(d), nil
}

// checkNext enforces the maxN contract: stopping early is only valid if
// the unread remainder continues with the same dimension. A full header
// is peeked without consuming it; a mismatch means the file is corrupt
// (or concatenated from different datasets) and the prefix read so far
// cannot be trusted. Fewer than four remaining bytes are ignored —
// distinguishing trailing padding from a truncated next vector is the
// caller's concern only when it reads that far.
func (vr *vecReader) checkNext(dim int) error {
	p, err := vr.br.Peek(4)
	if err != nil {
		return nil // clean EOF or short tail; the limit made it unreachable
	}
	if d := int32(binary.LittleEndian.Uint32(p)); int(d) != dim {
		return fmt.Errorf("dataset: %s vector %d (past read limit) has dimension %d != %d; refusing to return a silently mismatched prefix", vr.format, vr.n, d, dim)
	}
	return nil
}

// sizeHint returns the number of bytes remaining in r when that is
// cheaply knowable, else -1. It must be called before the first read.
func sizeHint(r io.Reader) int64 {
	switch s := r.(type) {
	case interface{ Len() int }: // bytes.Reader, bytes.Buffer, strings.Reader
		return int64(s.Len())
	case io.Seeker:
		cur, err := s.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := s.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := s.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

// growRows pre-grows flat for the expected remaining rows the first time
// the dimension is known, then extends it by one row. slices.Grow keeps
// growth amortized when no size hint was available.
func growRows(flat []float32, dim int, hint int64, bytesPerRow int, maxN int) []float32 {
	if cap(flat) == 0 && hint > 0 {
		rows := int(hint) / bytesPerRow
		if maxN > 0 && rows > maxN {
			rows = maxN
		}
		if rows > 0 && rows <= math.MaxInt/dim {
			flat = make([]float32, 0, rows*dim)
		}
	}
	return slices.Grow(flat, dim)[:len(flat)+dim]
}

// ReadFvecs parses an fvecs stream. maxN > 0 limits the number of vectors
// read; maxN <= 0 reads to EOF. When maxN stops the read early the next
// header (if any) is still validated, so a stream whose tail switches
// dimension is rejected instead of silently returning a prefix.
func ReadFvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	hint := sizeHint(r)
	vr := newVecReader(r, "fvecs")
	var (
		flat []float32
		dim  int
		body []byte
	)
	for maxN <= 0 || vr.n < maxN {
		d, err := vr.header()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if dim, err = vr.checkDim(d, dim); err != nil {
			return nil, err
		}
		if body == nil {
			body = make([]byte, 4*dim)
		}
		if err := vr.body(body); err != nil {
			return nil, err
		}
		flat = growRows(flat, dim, hint, 4+4*dim, maxN)
		row := flat[len(flat)-dim:]
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*j:]))
		}
	}
	if vr.n == 0 {
		return nil, fmt.Errorf("dataset: fvecs stream contained no vectors")
	}
	if maxN > 0 && vr.n == maxN {
		if err := vr.checkNext(dim); err != nil {
			return nil, err
		}
	}
	return &vec.Matrix{Data: flat, N: vr.n, D: dim}, nil
}

// WriteFvecs serializes m in fvecs format.
func WriteFvecs(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.N; i++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(m.D)); err != nil {
			return fmt.Errorf("dataset: fvecs write header: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Row(i)); err != nil {
			return fmt.Errorf("dataset: fvecs write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBvecs parses a bvecs (uint8 components) stream into float32 vectors.
// The maxN contract matches ReadFvecs.
func ReadBvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	hint := sizeHint(r)
	vr := newVecReader(r, "bvecs")
	var (
		flat []float32
		dim  int
		body []byte
	)
	for maxN <= 0 || vr.n < maxN {
		d, err := vr.header()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if dim, err = vr.checkDim(d, dim); err != nil {
			return nil, err
		}
		if body == nil {
			body = make([]byte, dim)
		}
		if err := vr.body(body); err != nil {
			return nil, err
		}
		flat = growRows(flat, dim, hint, 4+dim, maxN)
		row := flat[len(flat)-dim:]
		for j, b := range body {
			row[j] = float32(b)
		}
	}
	if vr.n == 0 {
		return nil, fmt.Errorf("dataset: bvecs stream contained no vectors")
	}
	if maxN > 0 && vr.n == maxN {
		if err := vr.checkNext(dim); err != nil {
			return nil, err
		}
	}
	return &vec.Matrix{Data: flat, N: vr.n, D: dim}, nil
}

// ReadIvecs parses an ivecs stream (e.g. ground-truth neighbor id lists).
// Rows may have different lengths (the format allows it), so the maxN
// next-header peek does not apply; the returned rows are views into one
// flat backing array.
func ReadIvecs(r io.Reader, maxN int) ([][]int32, error) {
	vr := newVecReader(r, "ivecs")
	var (
		flat []int32
		dims []int32
		body []byte
	)
	for maxN <= 0 || vr.n < maxN {
		d, err := vr.header()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if d <= 0 || d > maxSaneDim {
			return nil, fmt.Errorf("dataset: ivecs vector %d has bad dimension %d", vr.n, d)
		}
		if 4*int(d) > cap(body) {
			body = make([]byte, 4*d)
		}
		if err := vr.body(body[:4*d]); err != nil {
			return nil, err
		}
		flat = slices.Grow(flat, int(d))[:len(flat)+int(d)]
		row := flat[len(flat)-int(d):]
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(body[4*j:]))
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, nil
	}
	rows := make([][]int32, len(dims))
	off := 0
	for i, d := range dims {
		rows[i] = flat[off : off+int(d) : off+int(d)]
		off += int(d)
	}
	return rows, nil
}

// WriteIvecs serializes integer id lists in ivecs format.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	for i, row := range rows {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(row))); err != nil {
			return fmt.Errorf("dataset: ivecs write header: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, row); err != nil {
			return fmt.Errorf("dataset: ivecs write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ScanFvecs streams an fvecs file row by row without materializing it:
// fn is called with the row index and a reusable buffer (valid only for
// the duration of the call). Scanning stops at EOF or the first error
// returned by fn.
func ScanFvecs(path string, fn func(i int, row []float32) error) (n, dim int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	vr := newVecReader(f, "fvecs")
	vr.br = bufio.NewReaderSize(f, 1<<20)
	var row []float32
	var body []byte
	for {
		d, err := vr.header()
		if err == io.EOF {
			return vr.n, dim, nil
		}
		if err != nil {
			return vr.n, dim, err
		}
		if dim, err = vr.checkDim(d, dim); err != nil {
			return vr.n, dim, err
		}
		if row == nil {
			row = make([]float32, dim)
			body = make([]byte, 4*dim)
		}
		if err := vr.body(body); err != nil {
			return vr.n, dim, err
		}
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*j:]))
		}
		if err := fn(vr.n-1, row); err != nil {
			return vr.n, dim, err
		}
	}
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string, maxN int) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, maxN)
}

// SaveFvecsFile writes m to path in fvecs format. The write is atomic
// (temp file + fsync + rename), so a crash never leaves a truncated
// dataset at path.
func SaveFvecsFile(path string, m *vec.Matrix) error {
	return durable.AtomicWrite(path, func(f *os.File) error {
		return WriteFvecs(f, m)
	})
}
