package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bilsh/internal/durable"
	"bilsh/internal/vec"
)

// This file implements the .fvecs / .bvecs / .ivecs formats used by the
// standard ANN benchmark collections (TexMex/GIST, SIFT1M, ...), so real
// GIST descriptors — the paper's actual workload — can be dropped into any
// experiment in place of the synthetic generator.
//
// Format: each vector is stored as a little-endian int32 dimension d
// followed by d components (float32 for fvecs, uint8 for bvecs, int32 for
// ivecs).

// maxSaneDim bounds the per-vector dimension so a corrupt header cannot
// drive a multi-gigabyte allocation.
const maxSaneDim = 1 << 20

// ReadFvecs parses an fvecs stream. maxN > 0 limits the number of vectors
// read; maxN <= 0 reads to EOF.
func ReadFvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: fvecs header: %w", err)
		}
		if d <= 0 || d > maxSaneDim {
			return nil, fmt.Errorf("dataset: fvecs vector %d has bad dimension %d", len(rows), d)
		}
		if len(rows) > 0 && int(d) != len(rows[0]) {
			return nil, fmt.Errorf("dataset: fvecs vector %d dimension %d != %d", len(rows), d, len(rows[0]))
		}
		row := make([]float32, d)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("dataset: fvecs vector %d body: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: fvecs stream contained no vectors")
	}
	return vec.FromRows(rows), nil
}

// WriteFvecs serializes m in fvecs format.
func WriteFvecs(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.N; i++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(m.D)); err != nil {
			return fmt.Errorf("dataset: fvecs write header: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Row(i)); err != nil {
			return fmt.Errorf("dataset: fvecs write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBvecs parses a bvecs (uint8 components) stream into float32 vectors.
func ReadBvecs(r io.Reader, maxN int) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: bvecs header: %w", err)
		}
		if d <= 0 || d > maxSaneDim {
			return nil, fmt.Errorf("dataset: bvecs vector %d has bad dimension %d", len(rows), d)
		}
		if len(rows) > 0 && int(d) != len(rows[0]) {
			return nil, fmt.Errorf("dataset: bvecs vector %d dimension %d != %d", len(rows), d, len(rows[0]))
		}
		raw := make([]uint8, d)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("dataset: bvecs vector %d body: %w", len(rows), err)
		}
		row := make([]float32, d)
		for j, b := range raw {
			row[j] = float32(b)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: bvecs stream contained no vectors")
	}
	return vec.FromRows(rows), nil
}

// ReadIvecs parses an ivecs stream (e.g. ground-truth neighbor id lists).
func ReadIvecs(r io.Reader, maxN int) ([][]int32, error) {
	br := bufio.NewReader(r)
	var rows [][]int32
	for maxN <= 0 || len(rows) < maxN {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: ivecs header: %w", err)
		}
		if d <= 0 || d > maxSaneDim {
			return nil, fmt.Errorf("dataset: ivecs vector %d has bad dimension %d", len(rows), d)
		}
		row := make([]int32, d)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("dataset: ivecs vector %d body: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteIvecs serializes integer id lists in ivecs format.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	for i, row := range rows {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(row))); err != nil {
			return fmt.Errorf("dataset: ivecs write header: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, row); err != nil {
			return fmt.Errorf("dataset: ivecs write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ScanFvecs streams an fvecs file row by row without materializing it:
// fn is called with the row index and a reusable buffer (valid only for
// the duration of the call). Scanning stops at EOF or the first error
// returned by fn.
func ScanFvecs(path string, fn func(i int, row []float32) error) (n, dim int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var row []float32
	for {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				return n, dim, nil
			}
			return n, dim, fmt.Errorf("dataset: fvecs header at row %d: %w", n, err)
		}
		if d <= 0 || d > maxSaneDim {
			return n, dim, fmt.Errorf("dataset: fvecs row %d has bad dimension %d", n, d)
		}
		if dim == 0 {
			dim = int(d)
			row = make([]float32, dim)
		} else if int(d) != dim {
			return n, dim, fmt.Errorf("dataset: fvecs row %d dimension %d != %d", n, d, dim)
		}
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return n, dim, fmt.Errorf("dataset: fvecs row %d body: %w", n, err)
		}
		if err := fn(n, row); err != nil {
			return n, dim, err
		}
		n++
	}
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string, maxN int) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, maxN)
}

// SaveFvecsFile writes m to path in fvecs format. The write is atomic
// (temp file + fsync + rename), so a crash never leaves a truncated
// dataset at path.
func SaveFvecsFile(path string, m *vec.Matrix) error {
	return durable.AtomicWrite(path, func(f *os.File) error {
		return WriteFvecs(f, m)
	})
}
