package dataset

import "bilsh/internal/xrand"

func rngFor(seed int64) *xrand.RNG { return xrand.New(seed) }
