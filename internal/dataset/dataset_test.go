package dataset

import (
	"bytes"
	"math"
	"testing"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestClusteredShapeAndDeterminism(t *testing.T) {
	spec := DefaultClusteredSpec(500, 32)
	m1, l1, err := Clustered(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m1.N != 500 || m1.D != 32 || len(l1) != 500 {
		t.Fatalf("shape = %dx%d labels=%d", m1.N, m1.D, len(l1))
	}
	m2, l2, err := Clustered(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must generate identical labels")
		}
	}
	m3, _, err := Clustered(spec, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range m1.Data {
		if m1.Data[i] != m3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := []ClusteredSpec{
		{N: 0, D: 4, Clusters: 1, IntrinsicDim: 1, Aspect: 1},
		{N: 10, D: 0, Clusters: 1, IntrinsicDim: 1, Aspect: 1},
		{N: 10, D: 4, Clusters: 0, IntrinsicDim: 1, Aspect: 1},
		{N: 10, D: 4, Clusters: 1, IntrinsicDim: 5, Aspect: 1},
		{N: 10, D: 4, Clusters: 1, IntrinsicDim: 1, Aspect: 0.5},
	}
	for i, spec := range bad {
		if _, _, err := Clustered(spec, xrand.New(1)); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
}

func TestClusteredStructure(t *testing.T) {
	// Points sharing a label must on average be far closer to each other
	// than to points in other clusters.
	spec := ClusteredSpec{N: 400, D: 48, Clusters: 4, IntrinsicDim: 4,
		Aspect: 3, NoiseSigma: 0.01, Spread: 20, PowerLaw: 0}
	m, labels, err := Clustered(spec, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < m.N; i += 7 {
		for j := i + 1; j < m.N; j += 13 {
			d := vec.Dist(m.Row(i), m.Row(j))
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("sampling produced no intra or inter pairs")
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra*2 > inter {
		t.Fatalf("clusters not separated: intra=%.2f inter=%.2f", intra, inter)
	}
}

func TestClusterSizesPowerLawAndCoverage(t *testing.T) {
	sizes := clusterSizes(1000, 10, 1.2, xrand.New(5))
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("cluster with %d points; all must be non-empty", s)
		}
		total += s
	}
	if total != 1000 {
		t.Fatalf("sizes sum to %d, want 1000", total)
	}
	// Strong skew: the largest cluster should dominate the smallest.
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 2*min {
		t.Fatalf("power law not visible: min=%d max=%d", min, max)
	}
}

func TestUniformAndGaussianRanges(t *testing.T) {
	u := Uniform(200, 8, xrand.New(1))
	for _, x := range u.Data {
		if x < 0 || x >= 1 {
			t.Fatalf("Uniform sample %v out of [0,1)", x)
		}
	}
	g := Gaussian(5000, 4, 2.0, xrand.New(2))
	var ss float64
	for _, x := range g.Data {
		ss += float64(x) * float64(x)
	}
	std := math.Sqrt(ss / float64(len(g.Data)))
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("Gaussian std = %v, want ~2", std)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	m := Uniform(100, 3, xrand.New(4))
	train, q := Split(m, 25, xrand.New(9))
	if train.N != 75 || q.N != 25 {
		t.Fatalf("split sizes %d/%d", train.N, q.N)
	}
	// Every original row appears exactly once across the two outputs.
	seen := make(map[[3]float32]int)
	key := func(r []float32) [3]float32 { return [3]float32{r[0], r[1], r[2]} }
	for i := 0; i < m.N; i++ {
		seen[key(m.Row(i))]++
	}
	for i := 0; i < train.N; i++ {
		seen[key(train.Row(i))]--
	}
	for i := 0; i < q.N; i++ {
		seen[key(q.Row(i))]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("row %v appears with residual count %d", k, v)
		}
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	m := Uniform(17, 5, xrand.New(11))
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.D != m.D {
		t.Fatalf("round trip shape %dx%d", got.N, got.D)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("fvecs round trip corrupted data")
		}
	}
}

func TestFvecsMaxN(t *testing.T) {
	m := Uniform(10, 4, xrand.New(12))
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 {
		t.Fatalf("maxN=3 read %d vectors", got.N)
	}
}

func TestFvecsRejectsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // dimension -1
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("negative dimension must be rejected")
	}
	buf.Reset()
	buf.Write([]byte{0x00, 0x00, 0x00, 0x7f}) // absurd dimension
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("oversized dimension must be rejected")
	}
}

func TestFvecsRejectsRaggedDims(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, Uniform(1, 3, xrand.New(1))); err != nil {
		t.Fatal(err)
	}
	if err := WriteFvecs(&buf, Uniform(1, 4, xrand.New(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("mixed dimensions must be rejected")
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {4, 5, 6}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != 6 {
		t.Fatalf("ivecs round trip = %v", got)
	}
}

func TestBvecsRead(t *testing.T) {
	var buf bytes.Buffer
	// One vector: d=3, bytes 1,2,255.
	buf.Write([]byte{3, 0, 0, 0, 1, 2, 255})
	m, err := ReadBvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 1 || m.D != 3 || m.Row(0)[2] != 255 {
		t.Fatalf("bvecs = %v", m.Row(0))
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := Uniform(9, 6, xrand.New(13))
	path := t.TempDir() + "/t.fvecs"
	if err := SaveFvecsFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecsFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 9 || got.D != 6 {
		t.Fatalf("file round trip shape %dx%d", got.N, got.D)
	}
}
