package experiments

import (
	"fmt"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/rptree"
	"bilsh/internal/xrand"
)

// FigureResult is the output of one figure harness: labeled curves plus
// the identifiers the report printer uses.
type FigureResult struct {
	ID     string
	Title  string
	Series []Series
}

// pairFigure runs the standard-vs-bi-level comparison of Figs. 5-10 for
// one lattice/probe combination across the configured L sweep.
func pairFigure(w *Workload, id, title string, lat core.LatticeKind, probe core.ProbeMode) (FigureResult, error) {
	res := FigureResult{ID: id, Title: title}
	for _, l := range w.Cfg.Ls {
		std, err := RunSweep(w, StandardLSH(lat, probe, w.Cfg.M, l), l)
		if err != nil {
			return res, err
		}
		bi, err := RunSweep(w, BiLevelLSH(lat, probe, w.Cfg.M, l, w.Cfg.Groups), l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, std, bi)
	}
	return res, nil
}

// Figure5 compares standard and Bi-level LSH on the Z^M lattice.
func Figure5(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig5", "standard vs Bi-level LSH, Z^M lattice", core.LatticeZM, core.ProbeSingle)
}

// Figure6 compares standard and Bi-level LSH on the E8 lattice.
func Figure6(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig6", "standard vs Bi-level LSH, E8 lattice", core.LatticeE8, core.ProbeSingle)
}

// Figure7 compares the multiprobe variants on Z^M.
func Figure7(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig7", "multiprobe standard vs multiprobe Bi-level, Z^M lattice", core.LatticeZM, core.ProbeMulti)
}

// Figure8 compares the multiprobe variants on E8.
func Figure8(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig8", "multiprobe standard vs multiprobe Bi-level, E8 lattice", core.LatticeE8, core.ProbeMulti)
}

// Figure9 compares the hierarchical variants on Z^M.
func Figure9(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig9", "hierarchical standard vs hierarchical Bi-level, Z^M lattice", core.LatticeZM, core.ProbeHierarchy)
}

// Figure10 compares the hierarchical variants on E8.
func Figure10(w *Workload) (FigureResult, error) {
	return pairFigure(w, "fig10", "hierarchical standard vs hierarchical Bi-level, E8 lattice", core.LatticeE8, core.ProbeHierarchy)
}

// allSixMethods is the method set of Figs. 11-12, at a single L (the
// paper fixes L=20 there; we use the middle of the configured sweep).
func allSixMethods(lat core.LatticeKind, m, groups int) []Method {
	return []Method{
		StandardLSH(lat, core.ProbeSingle, m, 0),
		StandardLSH(lat, core.ProbeMulti, m, 0),
		StandardLSH(lat, core.ProbeHierarchy, m, 0),
		BiLevelLSH(lat, core.ProbeSingle, m, 0, groups),
		BiLevelLSH(lat, core.ProbeMulti, m, 0, groups),
		BiLevelLSH(lat, core.ProbeHierarchy, m, 0, groups),
	}
}

// midL picks the figure's fixed table count from the config.
func midL(cfg Config) int {
	if len(cfg.Ls) == 0 {
		return 10
	}
	return cfg.Ls[len(cfg.Ls)/2]
}

// Figure11 compares all six methods on Z^M, reporting the query-induced
// deviations alongside the means.
func Figure11(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "fig11", Title: "all methods, Z^M lattice (query variance)"}
	l := midL(w.Cfg)
	for _, m := range allSixMethods(core.LatticeZM, w.Cfg.M, w.Cfg.Groups) {
		s, err := RunSweep(w, m, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Figure12 is Figure11 on the E8 lattice.
func Figure12(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "fig12", Title: "all methods, E8 lattice (query variance)"}
	l := midL(w.Cfg)
	for _, m := range allSixMethods(core.LatticeE8, w.Cfg.M, w.Cfg.Groups) {
		s, err := RunSweep(w, m, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Figure13a sweeps the number of level-1 groups (paper: 1, 8, 16, 32, 64).
func Figure13a(w *Workload, groupCounts []int) (FigureResult, error) {
	if len(groupCounts) == 0 {
		groupCounts = []int{1, 8, 16, 32, 64}
	}
	res := FigureResult{ID: "fig13a", Title: "Bi-level LSH vs number of level-1 groups"}
	l := midL(w.Cfg)
	for _, g := range groupCounts {
		m := BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, g)
		if g == 1 {
			m = StandardLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l)
		}
		m.Name = fmt.Sprintf("groups=%d", g)
		m.Opts.Groups = g
		s, err := RunSweep(w, m, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Figure13b compares Bi-level against standard LSH at several M values,
// showing the improvement comes from better (not longer) codes.
func Figure13b(w *Workload, ms []int) (FigureResult, error) {
	if len(ms) == 0 {
		ms = []int{4, 8, 10}
	}
	res := FigureResult{ID: "fig13b", Title: "Bi-level vs standard LSH across hash lengths M"}
	l := midL(w.Cfg)
	for _, m := range ms {
		std := StandardLSH(core.LatticeZM, core.ProbeSingle, m, l)
		std.Name = fmt.Sprintf("standard M=%d", m)
		bi := BiLevelLSH(core.LatticeZM, core.ProbeSingle, m, l, w.Cfg.Groups)
		bi.Name = fmt.Sprintf("bi-level M=%d", m)
		for _, meth := range []Method{std, bi} {
			s, err := RunSweep(w, meth, l)
			if err != nil {
				return res, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Figure13c compares RP-tree and K-means as the level-1 partitioner.
func Figure13c(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "fig13c", Title: "RP-tree vs K-means level-1 partitioning"}
	l := midL(w.Cfg)
	rp := BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
	rp.Name = "bi-level (RP-tree)"
	km := rp
	km.Name = "bi-level (K-means)"
	km.Opts.Partitioner = core.PartitionKMeans
	for _, meth := range []Method{rp, km} {
		s, err := RunSweep(w, meth, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RPRuleComparison is an extension experiment (Section IV-A2 remarks that
// the mean rule beats the max rule): it traces both split rules.
func RPRuleComparison(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "rp-rule", Title: "RP-tree mean rule vs max rule (Sec. IV-A2 claim)"}
	l := midL(w.Cfg)
	mean := BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
	mean.Name = "bi-level (mean rule)"
	mean.Opts.RPRule = rptree.RuleMean
	max := mean
	max.Name = "bi-level (max rule)"
	max.Opts.RPRule = rptree.RuleMax
	for _, meth := range []Method{mean, max} {
		s, err := RunSweep(w, meth, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// TunerAblation is an extension experiment: bi-level with and without the
// per-group parameter tuner, isolating the Section IV-B claim that
// per-cell parameters improve on a single global setting.
func TunerAblation(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "tuner-ablation", Title: "per-group tuned W vs single global W"}
	l := midL(w.Cfg)
	tuned := BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
	tuned.Name = "bi-level (per-group W)"
	global := tuned
	global.Name = "bi-level (global W)"
	global.Opts.AutoTuneW = false
	// A global width needs an absolute scale; estimate one from the data
	// via a quick one-group tuned build and reuse the sweep multipliers.
	probe, err := core.Build(w.Train, core.Options{
		Partitioner: core.PartitionNone, AutoTuneW: true,
		Params: lshfunc.Params{M: w.Cfg.M, L: 1, W: 1},
	}, xrand.New(w.Cfg.Seed+424242))
	if err != nil {
		return res, err
	}
	base := probe.GroupW(0)
	global.Opts.Params.W = base

	s, err := RunSweep(w, tuned, l)
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, s)

	// For the global method the sweep multiplies the absolute base width.
	// The base (tuned on the whole dataset) is sized for *global* neighbor
	// distances, which dwarf the in-leaf scale of compact groups — swept
	// 1:1 it saturates every leaf into a single bucket (that saturation is
	// itself the Section IV-A3 argument). A 10x finer grid makes the two
	// curves span comparable selectivities.
	gSeries := Series{Method: global.Name, L: l}
	for wi, scale := range w.Cfg.WScales {
		runs := make([]knn.RunMeasure, 0, w.Cfg.Reps)
		for rep := 0; rep < w.Cfg.Reps; rep++ {
			opts := global.Opts
			opts.Params.L = l
			opts.Params.W = base * scale * 0.1
			seed := w.Cfg.Seed*1_000_003 + int64(wi)*101 + int64(rep) + 7
			ix, err := core.Build(w.Train, opts, xrand.New(seed))
			if err != nil {
				return res, err
			}
			runs = append(runs, measureRun(w, ix))
		}
		gSeries.Points = append(gSeries.Points, Point{WScale: scale, VarianceSummary: knn.AggregateRuns(runs)})
	}
	res.Series = append(res.Series, gSeries)
	return res, nil
}
