package experiments

import (
	"fmt"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// Method is one labeled index configuration under test.
type Method struct {
	Name string
	Opts core.Options
}

// StandardLSH returns the baseline method: no level-1 partitioning.
func StandardLSH(lat core.LatticeKind, probe core.ProbeMode, m, l int) Method {
	name := "standard"
	switch probe {
	case core.ProbeMulti:
		name = "multiprobe standard"
	case core.ProbeHierarchy:
		name = "hierarchical standard"
	}
	return Method{
		Name: fmt.Sprintf("%s LSH (%v)", name, lat),
		Opts: core.Options{
			Partitioner: core.PartitionNone,
			Lattice:     lat,
			ProbeMode:   probe,
			AutoTuneW:   true,
			Params:      lshfunc.Params{M: m, L: l, W: 1},
		},
	}
}

// BiLevelLSH returns the paper's method with the given enhancement.
func BiLevelLSH(lat core.LatticeKind, probe core.ProbeMode, m, l, groups int) Method {
	name := "Bi-level"
	switch probe {
	case core.ProbeMulti:
		name = "multiprobe Bi-level"
	case core.ProbeHierarchy:
		name = "hierarchical Bi-level"
	}
	return Method{
		Name: fmt.Sprintf("%s LSH (%v)", name, lat),
		Opts: core.Options{
			Partitioner: core.PartitionRPTree,
			Groups:      groups,
			Lattice:     lat,
			ProbeMode:   probe,
			AutoTuneW:   true,
			Params:      lshfunc.Params{M: m, L: l, W: 1},
		},
	}
}

// Point is one sweep position: the scaled width plus the aggregated
// variance summary of Reps independent projection draws.
type Point struct {
	WScale float64
	knn.VarianceSummary
}

// Series is one method's curve.
type Series struct {
	Method string
	L      int
	Points []Point
}

// RunSweep traces one method across the width sweep: for every WScale it
// rebuilds the index Reps times with independent projections, answers the
// whole query set, and aggregates the metrics per Section VI-B2.
func RunSweep(w *Workload, method Method, l int) (Series, error) {
	cfg := w.Cfg
	series := Series{Method: method.Name, L: l, Points: make([]Point, 0, len(cfg.WScales))}
	for wi, scale := range cfg.WScales {
		runs := make([]knn.RunMeasure, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			opts := method.Opts
			opts.Params.M = cfg.M
			if method.Opts.Params.M != 0 {
				opts.Params.M = method.Opts.Params.M
			}
			opts.Params.L = l
			opts.Params.W = scale
			opts.TuneK = cfg.K
			if opts.Groups == 0 {
				opts.Groups = cfg.Groups
			}
			seed := cfg.Seed*1_000_003 + int64(wi)*101 + int64(rep) + 7
			// The projection seed varies per rep but is shared across
			// methods and W values, matching the paper's protocol of
			// resampling projections per execution.
			ix, err := core.Build(w.Train, opts, xrand.New(seed))
			if err != nil {
				return Series{}, fmt.Errorf("experiments: %s W=%g rep %d: %w", method.Name, scale, rep, err)
			}
			runs = append(runs, measureRun(w, ix))
		}
		series.Points = append(series.Points, Point{WScale: scale, VarianceSummary: knn.AggregateRuns(runs)})
	}
	return series, nil
}

// measureRun answers every query and aggregates per-query metrics.
//
// Selectivity counts the *distinct* candidates |A(v)| of Eq. 5 — A(v) is a
// set in the paper's formalism, and the deduplicated count is what the
// short-list search actually ranks. (QueryStats also exposes the scanned
// multiset size for cost modeling; see the Figure 4 harness.)
func measureRun(w *Workload, ix *core.Index) knn.RunMeasure {
	results, stats := ix.QueryBatch(w.Queries, w.Cfg.K)
	ms := make([]knn.QueryMeasure, w.Queries.N)
	for qi := range ms {
		ms[qi] = knn.Measure(w.Truth[qi], results[qi], stats[qi].Candidates, w.Train.N)
	}
	return knn.AggregateQueries(ms)
}
