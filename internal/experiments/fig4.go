package experiments

import (
	"fmt"

	"bilsh/internal/core"
	"bilsh/internal/lshfunc"
	"bilsh/internal/parsim"
	"bilsh/internal/shortlist"
	"bilsh/internal/xrand"
)

// Figure4Point is one x-position of the short-list performance figure:
// the candidate volume produced by one bucket width, with modeled times
// and the measured engine statistics behind them.
type Figure4Point struct {
	WScale float64
	Row    parsim.Figure4Row
	// PaperRow re-models the same measured candidate sets at the paper's
	// geometry (GIST dim 384, k=500), which is what the quoted 2x /
	// 15-20x / ~40x layering is calibrated against; Row uses the local
	// workload's dimension and k.
	PaperRow parsim.Figure4Row
	Serial   shortlist.OpStats
	Queue    shortlist.OpStats
}

// Figure4Result is the full sweep.
type Figure4Result struct {
	Title  string
	Points []Figure4Point
}

// Figure4 reproduces the short-list search comparison: it builds a
// standard LSH index per width (the paper uses L=10, M=8, k=500 and
// varies W to change the candidate volume), gathers every query's real
// candidate set, runs the Serial and WorkQueue engines on it, and maps
// the measured operation counts through the parsim CPU and GPU models.
func Figure4(w *Workload) (Figure4Result, error) {
	cfg := w.Cfg
	res := Figure4Result{Title: "short-list search: CPU vs GPU-hash+CPU vs pure GPU (modeled)"}
	const l = 10
	for wi, scale := range cfg.WScales {
		ix, err := core.Build(w.Train, core.Options{
			Partitioner: core.PartitionNone,
			AutoTuneW:   true,
			Params:      lshfunc.Params{M: cfg.M, L: l, W: scale},
		}, xrand.New(cfg.Seed*31+int64(wi)))
		if err != nil {
			return res, fmt.Errorf("experiments: figure4 W=%g: %w", scale, err)
		}

		reqs := make([]shortlist.Request, w.Queries.N)
		wl := parsim.Workload{
			Queries: w.Queries.N,
			Dim:     w.Train.D,
			K:       cfg.K,
			Lookups: w.Queries.N * l,
		}
		for qi := 0; qi < w.Queries.N; qi++ {
			q := w.Queries.Row(qi)
			cands, _ := ix.CandidateList(q)
			reqs[qi] = shortlist.Request{Query: q, Candidates: cands}
			wl.PerQueryCandidates = append(wl.PerQueryCandidates, len(cands))
		}

		_, serialSt := shortlist.Serial{}.Search(w.Train, reqs, cfg.K)
		_, queueSt := shortlist.WorkQueue{}.Search(w.Train, reqs, cfg.K)
		row := parsim.ModelFigure4(parsim.CPU(), parsim.GTX480(), wl, serialSt, queueSt)
		paperWL := wl
		paperWL.Dim = 384
		paperWL.K = 500
		paperRow := parsim.ModelFigure4(parsim.CPU(), parsim.GTX480(), paperWL, serialSt, queueSt)
		res.Points = append(res.Points, Figure4Point{
			WScale: scale, Row: row, PaperRow: paperRow, Serial: serialSt, Queue: queueSt,
		})
	}
	return res, nil
}
