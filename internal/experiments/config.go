// Package experiments reproduces every figure of the paper's evaluation
// (Section VI): given a workload configuration it runs the competing
// methods across bucket-width sweeps and repeated random projections,
// collects the recall/error/selectivity metrics with their r1 (projection)
// and r2 (query) deviations, and renders the same series the figures plot.
//
// The workload is the documented GIST substitution (see DESIGN.md and
// package dataset); sizes default to laptop scale and every figure
// harness accepts a Config so the full-scale settings of the paper can be
// requested on bigger hardware.
package experiments

import (
	"fmt"

	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Config sizes an experiment.
type Config struct {
	// N is the number of indexed items (paper: 100,000).
	N int
	// Queries is the query-set size (paper: 100,000).
	Queries int
	// D is the feature dimension (paper: 512/384 GIST).
	D int
	// K is the neighborhood size (paper: 500).
	K int
	// M is the hash code length (paper: 8).
	M int
	// Groups is the level-1 partition count (paper: 16).
	Groups int
	// Reps is the number of independent random-projection repetitions
	// (paper: 10) — the r1 samples.
	Reps int
	// Clusters is the latent cluster count of the synthetic workload
	// (default 24). The paper's regime — image features of recurring
	// objects — has clusters at least as numerous as the level-1 groups
	// and neighborhoods well inside a cluster (K ≲ N/Clusters/2).
	Clusters int
	// WScales is the bucket-width sweep (multipliers over the tuned base
	// width) — the x axis of the selectivity curves.
	WScales []float64
	// Ls is the table-count sweep for Figs. 5-10 (paper: 10, 20, 30).
	Ls []int
	// Seed drives the whole experiment deterministically.
	Seed int64
	// Profile selects the workload character, mirroring the paper's two
	// datasets: "labelme" (default — moderate cluster count, strong scale
	// heterogeneity) or "tinyimages" (many small overlapping clusters, the
	// harder regime of the 80M-image corpus scaled down).
	Profile string
}

// Default returns the laptop-scale configuration used by the bench
// harness: the same protocol as the paper at ~1/12 the data volume.
func Default() Config {
	return Config{
		N: 8000, Queries: 600, D: 64, K: 20, M: 8, Groups: 16,
		Clusters: 32,
		Reps:     3,
		WScales:  []float64{0.2, 0.35, 0.6, 1.0, 1.6, 2.5},
		Ls:       []int{5, 10, 15},
		Seed:     1,
	}
}

// Tiny returns a smoke-test configuration for unit tests.
func Tiny() Config {
	return Config{
		N: 600, Queries: 60, D: 24, K: 10, M: 8, Groups: 8,
		Clusters: 12,
		Reps:     2,
		WScales:  []float64{0.4, 1.0},
		Ls:       []int{3},
		Seed:     1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.N <= 0 || c.Queries <= 0 || c.D <= 0:
		return fmt.Errorf("experiments: N=%d Queries=%d D=%d must be positive", c.N, c.Queries, c.D)
	case c.K <= 0 || c.M <= 0 || c.Groups <= 0 || c.Reps <= 0:
		return fmt.Errorf("experiments: K=%d M=%d Groups=%d Reps=%d must be positive", c.K, c.M, c.Groups, c.Reps)
	case len(c.WScales) == 0:
		return fmt.Errorf("experiments: WScales must be non-empty")
	}
	return nil
}

// Workload is the shared setup of one experiment: data, disjoint queries
// and exact ground truth (the paper's protocol: index 100k items, query
// with a disjoint set from the same collection).
type Workload struct {
	Cfg     Config
	Train   *vec.Matrix
	Queries *vec.Matrix
	Truth   []knn.Result
}

// NewWorkload generates the clustered-manifold dataset, splits it, and
// computes ground truth.
func NewWorkload(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	spec := dataset.DefaultClusteredSpec(cfg.N+cfg.Queries, cfg.D)
	switch cfg.Profile {
	case "", "labelme":
		// The defaults.
	case "tinyimages":
		// Many small, more-overlapping clusters with milder scale
		// heterogeneity — the character of a broad web-scale crawl.
		spec.Clusters = 64
		spec.Spread = 4
		spec.ScaleSpread = 2
		spec.IntrinsicDim = 6
		spec.PowerLaw = 0.6
	default:
		return nil, fmt.Errorf("experiments: unknown profile %q (want labelme or tinyimages)", cfg.Profile)
	}
	if cfg.Clusters > 0 {
		spec.Clusters = cfg.Clusters
	}
	data, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		return nil, err
	}
	train, queries := dataset.Split(data, cfg.Queries, rng.Split(2))
	truth := knn.ExactAll(train, queries, cfg.K)
	return &Workload{Cfg: cfg, Train: train, Queries: queries, Truth: truth}, nil
}
