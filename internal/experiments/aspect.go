package experiments

import (
	"fmt"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// AspectVariance reproduces the *analysis* of Section IV-A3 / Figure 2:
// on a flat (high aspect ratio) dataset no single bucket width suits all
// random projections, so standard LSH's quality and cost vary strongly
// with the projection draw; on round data (or after RP-tree partitioning
// into bounded-aspect cells) the variance shrinks.
//
// The harness generates single-structure datasets with aspect ratios
// {1, 4, 16}, runs standard LSH and Bi-level LSH with many independent
// projection draws at a fixed W, and reports the projection-induced
// standard deviations. Expected shape: std grows with aspect for standard
// LSH and stays flat(ter) for Bi-level.
type AspectPoint struct {
	Aspect float64
	Method string
	knn.VarianceSummary
}

// AspectVarianceResult is the harness output.
type AspectVarianceResult struct {
	Title  string
	Points []AspectPoint
}

// AspectVariance runs the study at the given workload scale (it builds its
// own datasets; only N/D/K/M/Reps/Seed of cfg are used, with Reps doubled
// because variance is the quantity under test).
func AspectVariance(cfg Config, aspects []float64) (AspectVarianceResult, error) {
	if err := cfg.Validate(); err != nil {
		return AspectVarianceResult{}, err
	}
	if len(aspects) == 0 {
		aspects = []float64{1, 4, 16}
	}
	res := AspectVarianceResult{Title: "projection variance vs dataset aspect ratio (Sec. IV-A3)"}
	reps := cfg.Reps * 2

	for _, aspect := range aspects {
		spec := dataset.ClusteredSpec{
			N: cfg.N + cfg.Queries, D: cfg.D,
			Clusters:     8,
			IntrinsicDim: 8,
			Aspect:       aspect,
			NoiseSigma:   0.05,
			Spread:       6,
			PowerLaw:     0.3,
			ScaleSpread:  1, // isolate the aspect effect
		}
		rng := xrand.New(cfg.Seed + int64(aspect*1000))
		data, _, err := dataset.Clustered(spec, rng.Split(1))
		if err != nil {
			return res, err
		}
		train, queries := dataset.Split(data, cfg.Queries, rng.Split(2))
		truth := knn.ExactAll(train, queries, cfg.K)
		w := &Workload{Cfg: cfg, Train: train, Queries: queries, Truth: truth}

		// One fixed absolute width for every projection draw and both
		// methods (computed once from a global tuned probe): the paper's
		// argument is precisely that with a FIXED W, different random
		// projections of flat data behave very differently. Per-draw
		// tuning would let W re-adapt and mask the effect.
		probe, err := core.Build(train, core.Options{
			Partitioner: core.PartitionNone, AutoTuneW: true, TuneK: cfg.K,
			Params: lshfunc.Params{M: cfg.M, L: 1, W: 1},
		}, xrand.New(cfg.Seed+555))
		if err != nil {
			return res, err
		}
		baseW := probe.GroupW(0) * 0.35 // low-W regime, where variance peaks

		for _, method := range []Method{
			StandardLSH(core.LatticeZM, core.ProbeSingle, cfg.M, 5),
			BiLevelLSH(core.LatticeZM, core.ProbeSingle, cfg.M, 5, cfg.Groups),
		} {
			runs := make([]knn.RunMeasure, 0, reps)
			for rep := 0; rep < reps; rep++ {
				opts := method.Opts
				opts.AutoTuneW = false
				opts.Params.M = cfg.M
				opts.Params.L = 5
				opts.Params.W = baseW
				opts.TuneK = cfg.K
				if opts.Groups == 0 {
					opts.Groups = cfg.Groups
				}
				ix, err := core.Build(train, opts, xrand.New(cfg.Seed*7919+int64(rep)+int64(aspect)))
				if err != nil {
					return res, fmt.Errorf("experiments: aspect %g rep %d: %w", aspect, rep, err)
				}
				runs = append(runs, measureRun(w, ix))
			}
			res.Points = append(res.Points, AspectPoint{
				Aspect: aspect, Method: method.Name,
				VarianceSummary: knn.AggregateRuns(runs),
			})
		}
	}
	return res, nil
}

// WriteTable renders the study.
func (r AspectVarianceResult) WriteTable(w interface{ Write([]byte) (int, error) }) error {
	if _, err := fmt.Fprintf(w, "== aspect-variance: %s ==\n", r.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  %-24s %10s %12s %12s %12s\n",
		"aspect", "method", "recall", "recall±proj", "select.", "sel±proj"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%8.0f  %-24s %10.4f %12.4f %12.4f %12.4f\n",
			p.Aspect, p.Method, p.MeanRecall, p.ProjStdRecall,
			p.MeanSelectivity, p.ProjStdSelectivity); err != nil {
			return err
		}
	}
	return nil
}
