package experiments

import (
	"fmt"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/xrand"
)

// LatticeComparison is an extension ablation on the density axis the paper
// motivates in Section II-B: the same Bi-level index quantized on Z^M, D_n
// and E8. E8's higher density should buy quality at equal selectivity in
// dim-8 blocks, with D_n in between.
func LatticeComparison(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "lattice-cmp", Title: "quantizer density ablation: Z^M vs D_n vs E8"}
	l := midL(w.Cfg)
	for _, lat := range []core.LatticeKind{core.LatticeZM, core.LatticeDn, core.LatticeE8} {
		m := BiLevelLSH(lat, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
		m.Name = fmt.Sprintf("bi-level (%v)", lat)
		s, err := RunSweep(w, m, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// ProbeBudget is an extension ablation of the multi-probe budget T: the
// paper fixes 240 probes (the E8 kissing number); this harness sweeps the
// budget to expose the probes-vs-quality trade-off at fixed L.
func ProbeBudget(w *Workload, budgets []int) (FigureResult, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 11, 51, 241}
	}
	res := FigureResult{ID: "probe-budget", Title: "multiprobe budget sweep (bi-level, Z^M)"}
	l := midL(w.Cfg)
	for _, t := range budgets {
		m := BiLevelLSH(core.LatticeZM, core.ProbeMulti, w.Cfg.M, l, w.Cfg.Groups)
		if t <= 1 {
			m = BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
		}
		m.Name = fmt.Sprintf("probes=%d", t)
		m.Opts.Probes = t
		s, err := RunSweep(w, m, l)
		if err != nil {
			return res, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// GroupRouting is an extension ablation of the level-1 routing risk: it
// compares the bi-level index against an in-leaf oracle whose width sweep
// is multiplied 100x, so each query scans essentially its whole group. The
// oracle's recall plateau is the ceiling imposed by restricting search to
// the query's RP-tree leaf — the cross-leaf neighbor loss the bi-level
// scheme trades for selectivity.
func GroupRouting(w *Workload) (FigureResult, error) {
	res := FigureResult{ID: "group-routing", Title: "level-1 routing ceiling: bi-level vs in-leaf oracle"}
	l := midL(w.Cfg)
	base := BiLevelLSH(core.LatticeZM, core.ProbeSingle, w.Cfg.M, l, w.Cfg.Groups)
	biSeries, err := RunSweep(w, base, l)
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, biSeries)

	oracle := Series{Method: "in-leaf oracle (100x widths)", L: l}
	cfg := w.Cfg
	for wi, scale := range cfg.WScales {
		runs := make([]knn.RunMeasure, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			opts := base.Opts
			opts.Params.M = cfg.M
			opts.Params.L = l
			opts.Params.W = scale * 100
			opts.TuneK = cfg.K
			seed := cfg.Seed*1_000_003 + int64(wi)*101 + int64(rep) + 7
			ix, err := core.Build(w.Train, opts, xrand.New(seed))
			if err != nil {
				return res, fmt.Errorf("experiments: oracle W=%g rep %d: %w", scale, rep, err)
			}
			runs = append(runs, measureRun(w, ix))
		}
		oracle.Points = append(oracle.Points, Point{WScale: scale, VarianceSummary: knn.AggregateRuns(runs)})
	}
	res.Series = append(res.Series, oracle)
	return res, nil
}
