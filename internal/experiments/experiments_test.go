package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bilsh/internal/knn"
)

// sharedWorkload is built once; the harness runs are the expensive part.
var sharedWL *Workload

func workload(t *testing.T) *Workload {
	t.Helper()
	if sharedWL == nil {
		w, err := NewWorkload(Tiny())
		if err != nil {
			t.Fatal(err)
		}
		sharedWL = w
	}
	return sharedWL
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Tiny().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Tiny()
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("N=0 must be invalid")
	}
	bad = Tiny()
	bad.WScales = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty WScales must be invalid")
	}
}

func TestWorkloadShape(t *testing.T) {
	w := workload(t)
	cfg := Tiny()
	if w.Train.N != cfg.N || w.Queries.N != cfg.Queries {
		t.Fatalf("workload sizes %d/%d", w.Train.N, w.Queries.N)
	}
	if len(w.Truth) != cfg.Queries {
		t.Fatal("truth missing")
	}
	if len(w.Truth[0].IDs) != cfg.K {
		t.Fatalf("truth K = %d", len(w.Truth[0].IDs))
	}
}

// checkFigure validates the structural invariants every harness output
// must satisfy.
func checkFigure(t *testing.T, res FigureResult, wantSeries int) {
	t.Helper()
	if len(res.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", res.ID, len(res.Series), wantSeries)
	}
	cfg := Tiny()
	for _, s := range res.Series {
		if len(s.Points) != len(cfg.WScales) {
			t.Fatalf("%s/%s: %d points, want %d", res.ID, s.Method, len(s.Points), len(cfg.WScales))
		}
		prevSel := -1.0
		for _, p := range s.Points {
			if p.MeanRecall < 0 || p.MeanRecall > 1 {
				t.Fatalf("%s/%s: recall %v out of range", res.ID, s.Method, p.MeanRecall)
			}
			if p.MeanError < 0 || p.MeanError > 1.0001 {
				t.Fatalf("%s/%s: error ratio %v out of range", res.ID, s.Method, p.MeanError)
			}
			// Scanned-entry selectivity can exceed 1 but never L (each
			// table contributes at most the whole group).
			if p.MeanSelectivity < 0 || p.MeanSelectivity > float64(s.L)+0.001 {
				t.Fatalf("%s/%s: selectivity %v out of range", res.ID, s.Method, p.MeanSelectivity)
			}
			// Wider buckets must not shrink selectivity (weak monotone
			// check with float slack for the tiny scale).
			if p.MeanSelectivity < prevSel-0.05 {
				t.Fatalf("%s/%s: selectivity not monotone in W", res.ID, s.Method)
			}
			prevSel = p.MeanSelectivity
		}
		// Recall should grow with W overall; allow smoke-scale noise
		// (multiprobe at wider buckets can trade a little recall, which
		// the paper also observes for E8 multiprobe).
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.MeanRecall+0.06 < first.MeanRecall {
			t.Fatalf("%s/%s: recall decreased across the W sweep (%.3f -> %.3f)",
				res.ID, s.Method, first.MeanRecall, last.MeanRecall)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), res.ID) {
		t.Fatal("table missing figure id")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}
func TestFigure6(t *testing.T) {
	res, err := Figure6(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}
func TestFigure7(t *testing.T) {
	res, err := Figure7(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}
func TestFigure8(t *testing.T) {
	res, err := Figure8(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}
func TestFigure9(t *testing.T) {
	res, err := Figure9(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}
func TestFigure10(t *testing.T) {
	res, err := Figure10(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}

func TestFigure11(t *testing.T) {
	res, err := Figure11(workload(t))
	noErr(t, err)
	checkFigure(t, res, 6)
}

func TestFigure12(t *testing.T) {
	res, err := Figure12(workload(t))
	noErr(t, err)
	checkFigure(t, res, 6)
}

func TestFigure13a(t *testing.T) {
	res, err := Figure13a(workload(t), []int{1, 4})
	noErr(t, err)
	checkFigure(t, res, 2)
}

func TestFigure13b(t *testing.T) {
	res, err := Figure13b(workload(t), []int{4, 8})
	noErr(t, err)
	checkFigure(t, res, 4)
}

func TestFigure13c(t *testing.T) {
	res, err := Figure13c(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}

func TestRPRuleComparison(t *testing.T) {
	res, err := RPRuleComparison(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}

func TestTunerAblation(t *testing.T) {
	res, err := TunerAblation(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(workload(t))
	noErr(t, err)
	cfg := Tiny()
	if len(res.Points) != len(cfg.WScales) {
		t.Fatalf("fig4 points = %d", len(res.Points))
	}
	prev := 0
	for _, p := range res.Points {
		if p.Row.Candidates < prev {
			t.Fatal("fig4 candidate volume must grow with W")
		}
		prev = p.Row.Candidates
		if p.Row.Candidates > 0 {
			if !(p.Row.CPUOnly > p.Row.GPUHashCPUSL &&
				p.Row.GPUHashCPUSL > p.Row.PureGPU &&
				p.Row.PureGPU > p.Row.PureGPUQueued) {
				t.Fatalf("fig4 ordering violated: %+v", p.Row)
			}
		}
		if p.Serial.DistanceOps > p.Queue.DistanceOps {
			t.Fatal("serial engine (deduped) cannot do more distance work than the queue")
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig4") {
		t.Fatal("fig4 table missing header")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Points: []Point{
		{WScale: 1, VarianceSummary: summaryWith(0.1, 0.5, 0.01, 0.02)},
		{WScale: 2, VarianceSummary: summaryWith(0.3, 0.9, 0.03, 0.04)},
	}}
	if r, ok := s.BestRecallAt(0.12); !ok || r != 0.5 {
		t.Fatalf("BestRecallAt = %v,%v", r, ok)
	}
	if r, ok := s.InterpolateRecallAt(0.2); !ok || r < 0.699 || r > 0.701 {
		t.Fatalf("InterpolateRecallAt = %v,%v", r, ok)
	}
	if _, ok := s.InterpolateRecallAt(0.9); ok {
		t.Fatal("out-of-range interpolation must fail")
	}
	if got := s.MeanProjStdRecall(); got != 0.02 {
		t.Fatalf("MeanProjStdRecall = %v", got)
	}
	if got := s.MeanQueryStdRecall(); got != 0.03 {
		t.Fatalf("MeanQueryStdRecall = %v", got)
	}
	var empty Series
	if empty.MeanProjStdRecall() != 0 || empty.MeanQueryStdRecall() != 0 {
		t.Fatal("empty series helpers must be zero")
	}
}

func summaryWith(sel, recall, projStd, qryStd float64) knn.VarianceSummary {
	return knn.VarianceSummary{
		MeanSelectivity: sel,
		MeanRecall:      recall,
		ProjStdRecall:   projStd,
		QueryStdRecall:  qryStd,
		Runs:            1,
	}
}

func noErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatticeComparison(t *testing.T) {
	res, err := LatticeComparison(workload(t))
	noErr(t, err)
	checkFigure(t, res, 3)
}

func TestGroupRouting(t *testing.T) {
	res, err := GroupRouting(workload(t))
	noErr(t, err)
	checkFigure(t, res, 2)
	// The oracle (second series) must dominate the bi-level curve's
	// recall at every sweep point: it scans the whole group.
	bi, oracle := res.Series[0], res.Series[1]
	for i := range bi.Points {
		if oracle.Points[i].MeanRecall+0.02 < bi.Points[i].MeanRecall {
			t.Fatalf("oracle below bi-level at point %d", i)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Figure13c(workload(t))
	noErr(t, err)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := 1 // header
	for _, s := range res.Series {
		wantRows += len(s.Points)
	}
	if len(lines) != wantRows {
		t.Fatalf("csv has %d lines, want %d", len(lines), wantRows)
	}
	if !strings.HasPrefix(lines[0], "figure,method,L,wscale") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestFigure4CSV(t *testing.T) {
	res, err := Figure4(workload(t))
	noErr(t, err)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + two geometries per point.
	if want := 1 + 2*len(res.Points); len(lines) != want {
		t.Fatalf("fig4 csv has %d lines, want %d", len(lines), want)
	}
	if !strings.Contains(buf.String(), "paper(d384,k500)") {
		t.Fatal("fig4 csv missing paper-geometry rows")
	}
}

func TestProfiles(t *testing.T) {
	cfg := Tiny()
	cfg.Clusters = 0 // let the profile decide
	cfg.Profile = "tinyimages"
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Train.N != cfg.N {
		t.Fatalf("profile workload has %d train rows", w.Train.N)
	}
	cfg.Profile = "nonsense"
	if _, err := NewWorkload(cfg); err == nil {
		t.Fatal("unknown profile must be rejected")
	}
	// The two profiles must generate different data.
	a, err := NewWorkload(Config{N: 200, Queries: 20, D: 16, K: 5, M: 8,
		Groups: 4, Reps: 1, WScales: []float64{1}, Seed: 5, Profile: "labelme"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(Config{N: 200, Queries: 20, D: 16, K: 5, M: 8,
		Groups: 4, Reps: 1, WScales: []float64{1}, Seed: 5, Profile: "tinyimages"})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Train.Data {
		if a.Train.Data[i] != b.Train.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("profiles generated identical data")
	}
}

func TestProbeBudget(t *testing.T) {
	res, err := ProbeBudget(workload(t), []int{1, 8})
	noErr(t, err)
	checkFigure(t, res, 2)
	// More probes must not shrink the candidate pool (selectivity) at the
	// same sweep point.
	single, multi := res.Series[0], res.Series[1]
	for i := range single.Points {
		if multi.Points[i].MeanSelectivity+1e-9 < single.Points[i].MeanSelectivity {
			t.Fatalf("probes=8 scanned less than probes=1 at point %d", i)
		}
	}
}

func TestAspectVariance(t *testing.T) {
	cfg := Tiny()
	cfg.N, cfg.Queries, cfg.Reps = 400, 40, 2
	res, err := AspectVariance(cfg, []float64{1, 8})
	noErr(t, err)
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 aspects x 2 methods)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MeanRecall < 0 || p.MeanRecall > 1 || p.ProjStdRecall < 0 {
			t.Fatalf("implausible point %+v", p)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aspect-variance") {
		t.Fatal("table header missing")
	}
}
