package experiments

import (
	"fmt"
	"io"
)

// WriteTable renders a FigureResult as an aligned text report: one block
// per series, one row per sweep point, with the three metrics and both
// deviation decompositions (±proj is the r1 std across projections, ±qry
// the mean per-query std).
func (r FigureResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "-- %s (L=%d)\n", s.Method, s.L); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%8s  %24s  %24s  %24s\n",
			"Wscale", "selectivity ±proj ±qry", "recall ±proj ±qry", "error ±proj ±qry"); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%8.2f  %8.4f %6.4f %6.4f   %8.4f %6.4f %6.4f   %8.4f %6.4f %6.4f\n",
				p.WScale,
				p.MeanSelectivity, p.ProjStdSelectivity, p.QueryStdSel,
				p.MeanRecall, p.ProjStdRecall, p.QueryStdRecall,
				p.MeanError, p.ProjStdError, p.QueryStdError); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable renders the Figure 4 sweep: candidate volume, modeled times
// and the derived speedups.
func (r Figure4Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== fig4: %s ==\n", r.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %14s %14s %14s %14s %8s %8s %8s\n",
		"Wscale", "candidates", "CPU-lshkit", "GPUhash+CPUsl", "GPU(perthread)", "GPU(workqueue)",
		"x-hash", "x-gpu", "x-queue"); err != nil {
		return err
	}
	for _, p := range r.Points {
		h, g, q := p.Row.Speedups()
		if _, err := fmt.Fprintf(w, "%8.2f %12d %14.3g %14.3g %14.3g %14.3g %8.1f %8.1f %8.1f\n",
			p.WScale, p.Row.Candidates,
			p.Row.CPUOnly, p.Row.GPUHashCPUSL, p.Row.PureGPU, p.Row.PureGPUQueued,
			h, g, q); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "-- same candidate sets re-modeled at the paper's geometry (dim 384, k=500):"); err != nil {
		return err
	}
	for _, p := range r.Points {
		h, g, q := p.PaperRow.Speedups()
		if _, err := fmt.Fprintf(w, "%8.2f %12d %14.3g %14.3g %14.3g %14.3g %8.1f %8.1f %8.1f\n",
			p.WScale, p.PaperRow.Candidates,
			p.PaperRow.CPUOnly, p.PaperRow.GPUHashCPUSL, p.PaperRow.PureGPU, p.PaperRow.PureGPUQueued,
			h, g, q); err != nil {
			return err
		}
	}
	return nil
}

// BestRecallAt returns the series' recall at the sweep point whose mean
// selectivity is closest to (but not above 1.5x) the target — the "given
// the same selectivity" comparison the paper's conclusions rest on. ok is
// false when no point qualifies.
func (s Series) BestRecallAt(targetSel float64) (recall float64, ok bool) {
	bestGap := -1.0
	for _, p := range s.Points {
		if p.MeanSelectivity > 1.5*targetSel {
			continue
		}
		gap := targetSel - p.MeanSelectivity
		if gap < 0 {
			gap = -gap
		}
		if bestGap < 0 || gap < bestGap {
			bestGap = gap
			recall = p.MeanRecall
			ok = true
		}
	}
	return recall, ok
}

// InterpolateRecallAt linearly interpolates a series' selectivity→recall
// curve at the target selectivity; ok is false when the target lies
// outside the measured selectivity range.
func (s Series) InterpolateRecallAt(targetSel float64) (float64, bool) {
	type pt struct{ sel, rec float64 }
	pts := make([]pt, 0, len(s.Points))
	for _, p := range s.Points {
		pts = append(pts, pt{p.MeanSelectivity, p.MeanRecall})
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if lo.sel > hi.sel {
			lo, hi = hi, lo
		}
		if targetSel >= lo.sel && targetSel <= hi.sel {
			if hi.sel == lo.sel {
				return (lo.rec + hi.rec) / 2, true
			}
			t := (targetSel - lo.sel) / (hi.sel - lo.sel)
			return lo.rec + t*(hi.rec-lo.rec), true
		}
	}
	return 0, false
}

// MeanProjStdRecall averages the projection-induced recall deviation over
// the sweep — the summary number used to verify the variance-reduction
// claims.
func (s Series) MeanProjStdRecall() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.ProjStdRecall
	}
	return sum / float64(len(s.Points))
}

// MeanQueryStdRecall averages the query-induced recall deviation over the
// sweep (Figs. 11-12's headline quantity).
func (s Series) MeanQueryStdRecall() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.QueryStdRecall
	}
	return sum / float64(len(s.Points))
}
