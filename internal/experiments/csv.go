package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the figure's series as tidy CSV (one row per method ×
// sweep point), ready for plotting:
//
//	figure,method,L,wscale,selectivity,sel_proj_std,sel_query_std,
//	recall,recall_proj_std,recall_query_std,
//	error_ratio,error_proj_std,error_query_std,runs
func (r FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"figure", "method", "L", "wscale",
		"selectivity", "sel_proj_std", "sel_query_std",
		"recall", "recall_proj_std", "recall_query_std",
		"error_ratio", "error_proj_std", "error_query_std",
		"runs",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
	for _, s := range r.Series {
		for _, p := range s.Points {
			row := []string{
				r.ID, s.Method, strconv.Itoa(s.L), f(p.WScale),
				f(p.MeanSelectivity), f(p.ProjStdSelectivity), f(p.QueryStdSel),
				f(p.MeanRecall), f(p.ProjStdRecall), f(p.QueryStdRecall),
				f(p.MeanError), f(p.ProjStdError), f(p.QueryStdError),
				strconv.Itoa(p.Runs),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 4 sweep as tidy CSV, including both the
// local-geometry and paper-geometry modeled times.
func (r Figure4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"wscale", "candidates", "geometry",
		"cpu_only", "gpu_hash_cpu_sl", "pure_gpu", "work_queue",
		"x_hash", "x_gpu", "x_queue",
		"serial_dist_ops", "queue_sorted_items", "queue_passes",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
	for _, p := range r.Points {
		for _, geo := range []struct {
			name string
			row  interface {
				Speedups() (float64, float64, float64)
			}
			cpu, hash, gpu, queue float64
		}{
			{"local", p.Row, p.Row.CPUOnly, p.Row.GPUHashCPUSL, p.Row.PureGPU, p.Row.PureGPUQueued},
			{"paper(d384,k500)", p.PaperRow, p.PaperRow.CPUOnly, p.PaperRow.GPUHashCPUSL, p.PaperRow.PureGPU, p.PaperRow.PureGPUQueued},
		} {
			h, g, q := geo.row.Speedups()
			row := []string{
				f(p.WScale), strconv.Itoa(p.Row.Candidates), geo.name,
				f(geo.cpu), f(geo.hash), f(geo.gpu), f(geo.queue),
				f(h), f(g), f(q),
				strconv.Itoa(p.Serial.DistanceOps), strconv.Itoa(p.Queue.SortedItems), strconv.Itoa(p.Queue.Passes),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
