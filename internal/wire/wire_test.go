package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, write func(*Writer), read func(*Reader)) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	write(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	read(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestScalars(t *testing.T) {
	roundTrip(t,
		func(w *Writer) {
			w.U64(0)
			w.U64(math.MaxUint64)
			w.I64(-12345)
			w.Int(42)
			w.Bool(true)
			w.Bool(false)
			w.F64(-1.5e300)
			w.F32(3.25)
			w.String("héllo")
			w.String("")
		},
		func(r *Reader) {
			if r.U64() != 0 || r.U64() != math.MaxUint64 {
				t.Error("u64 mismatch")
			}
			if r.I64() != -12345 || r.Int() != 42 {
				t.Error("i64 mismatch")
			}
			if !r.Bool() || r.Bool() {
				t.Error("bool mismatch")
			}
			if r.F64() != -1.5e300 || r.F32() != 3.25 {
				t.Error("float mismatch")
			}
			if r.String() != "héllo" || r.String() != "" {
				t.Error("string mismatch")
			}
		})
}

func TestSlices(t *testing.T) {
	f32 := []float32{1, -2, 3.5}
	f64 := []float64{math.Pi, -math.E}
	ints := []int{0, -1, 1 << 40}
	i32s := []int32{-7, 7, math.MaxInt32, math.MinInt32}
	strs := []string{"a", "", "long string with spaces"}
	roundTrip(t,
		func(w *Writer) {
			w.F32s(f32)
			w.F64s(f64)
			w.Ints(ints)
			w.I32s(i32s)
			w.Strings(strs)
			w.F32s(nil)
			w.Ints(nil)
		},
		func(r *Reader) {
			if !reflect.DeepEqual(r.F32s(), f32) {
				t.Error("f32s mismatch")
			}
			if !reflect.DeepEqual(r.F64s(), f64) {
				t.Error("f64s mismatch")
			}
			if !reflect.DeepEqual(r.Ints(), ints) {
				t.Error("ints mismatch")
			}
			if !reflect.DeepEqual(r.I32s(), i32s) {
				t.Error("i32s mismatch")
			}
			if !reflect.DeepEqual(r.Strings(), strs) {
				t.Error("strings mismatch")
			}
			if got := r.F32s(); len(got) != 0 {
				t.Error("nil f32s mismatch")
			}
			if got := r.Ints(); len(got) != 0 {
				t.Error("nil ints mismatch")
			}
		})
}

// Property: arbitrary scalar sequences survive a round trip.
func TestScalarProperty(t *testing.T) {
	f := func(u uint64, i int64, f64v float64, f32v float32, s string, b bool) bool {
		ok := true
		roundTrip(t,
			func(w *Writer) {
				w.U64(u)
				w.I64(i)
				w.F64(f64v)
				w.F32(f32v)
				w.String(s)
				w.Bool(b)
			},
			func(r *Reader) {
				if r.U64() != u || r.I64() != i {
					ok = false
				}
				gf64, gf32 := r.F64(), r.F32()
				// NaN != NaN; compare bit patterns.
				if math.Float64bits(gf64) != math.Float64bits(f64v) ||
					math.Float32bits(gf32) != math.Float32bits(f32v) {
					ok = false
				}
				if r.String() != s || r.Bool() != b {
					ok = false
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("BILSH1")
	w.Int(7)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.ExpectMagic("BILSH1")
	if r.Int() != 7 || r.Err() != nil {
		t.Fatal("magic round trip failed")
	}
	r2 := NewReader(bytes.NewReader(buf.Bytes()))
	r2.ExpectMagic("OTHER")
	if r2.Err() == nil {
		t.Fatal("wrong magic must error")
	}
}

func TestTruncatedInputErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64s([]float64{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.F64s()
		if r.Err() == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(uint64(MaxLen) + 1) // forged length prefix
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := r.Ints(); got != nil || r.Err() == nil {
		t.Fatal("oversized length prefix must be rejected")
	}
}

func TestStickyErrorStopsEverything(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.Int() // fails: empty input
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	first := r.Err()
	// Everything afterwards is a no-op preserving the first error.
	_ = r.String()
	_ = r.F32s()
	if r.Err() != first {
		t.Fatal("sticky error replaced")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestWriterPropagatesErrors(t *testing.T) {
	w := NewWriter(&failWriter{after: 2})
	for i := 0; i < 10000; i++ {
		w.F64(1.0) // eventually overflows the bufio buffer and hits the sink
	}
	if w.Flush() == nil {
		t.Fatal("writer error not propagated")
	}
}

func TestBytesWritten(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64(1)
	w.F32(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != 12 {
		t.Fatalf("BytesWritten = %d, want 12", w.BytesWritten())
	}
}
