package wire

import (
	"bytes"
	"testing"
)

func TestWordsRoundTrip(t *testing.T) {
	in := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafef00d, 1 << 63}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Words(in)
	w.Words(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fixed width: length prefix (1 byte for 5) + 5*8 payload, then the
	// empty slice's single length byte.
	if got, want := buf.Len(), 1+5*8+1; got != want {
		t.Fatalf("encoded %d bytes, want %d (fixed-width words)", got, want)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	out := r.Words()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d words, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("word %d = %#x, want %#x", i, out[i], in[i])
		}
	}
	if empty := r.Words(); len(empty) != 0 || r.Err() != nil {
		t.Fatalf("empty slice decoded as %v (err %v)", empty, r.Err())
	}
}

func TestWordsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Words([]uint64{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-4]))
	if out := r.Words(); out != nil || r.Err() == nil {
		t.Fatalf("truncated payload decoded as %v with err %v", out, r.Err())
	}
}
