// Package wire implements the little-endian binary codec used to persist
// indexes to disk. It follows the sticky-error pattern: a Writer or Reader
// records the first failure and turns every subsequent operation into a
// no-op, so serializers read as straight-line code with a single error
// check at the end.
//
// Format conventions: unsigned integers are varint-encoded, signed
// integers zigzag+varint, floats are fixed-width IEEE-754 little-endian,
// and every slice/string is length-prefixed. Readers bound every length
// prefix (MaxLen) so corrupt or adversarial input cannot trigger huge
// allocations.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxLen bounds any single length prefix accepted by a Reader.
const MaxLen = 1 << 30

// Writer serializes values to an io.Writer with a sticky error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// BytesWritten returns the number of payload bytes written so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Flush drains the buffer and returns the sticky error, if any.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	if err != nil {
		w.err = err
	}
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// I64 writes a signed integer (zigzag varint).
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int writes an int as I64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a single byte 0/1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// F64 writes a fixed-width float64.
func (w *Writer) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.write(b[:])
}

// F32 writes a fixed-width float32.
func (w *Writer) F32(v float32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	w.write(b[:])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// F32s writes a length-prefixed []float32.
func (w *Writer) F32s(xs []float32) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.F32(x)
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(xs []float64) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.F64(x)
	}
}

// Ints writes a length-prefixed []int.
func (w *Writer) Ints(xs []int) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.I64(int64(x))
	}
}

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(xs []int32) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.I64(int64(x))
	}
}

// Bytes writes a length-prefixed raw byte slice in one shot (no per-byte
// framing — used for bulk payloads like quantized code rows).
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

// Words writes a length-prefixed []uint64 as fixed-width little-endian
// words. Packed bit payloads (binary sketches) have uniformly random high
// bits, so varint framing would cost 10 bytes per word; fixed width keeps
// them at 8.
func (w *Writer) Words(xs []uint64) {
	w.U64(uint64(len(xs)))
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], x)
		w.write(b[:])
	}
}

// Strings writes a length-prefixed []string.
func (w *Writer) Strings(xs []string) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.String(x)
	}
}

// Reader deserializes values with a sticky error.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("wire: uvarint: %w", err))
		return 0
	}
	return v
}

// I64 reads a signed integer.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("wire: varint: %w", err))
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	var b [1]byte
	r.readFull(b[:])
	return b[0] != 0
}

// F64 reads a fixed-width float64.
func (r *Reader) F64() float64 {
	var b [8]byte
	r.readFull(b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// F32 reads a fixed-width float32.
func (r *Reader) F32() float32 {
	var b [4]byte
	r.readFull(b[:])
	return math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
}

// lenPrefix reads and bounds a length prefix.
func (r *Reader) lenPrefix() int {
	n := r.U64()
	if n > MaxLen {
		r.fail(fmt.Errorf("wire: length %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.lenPrefix()
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	r.readFull(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// F32s reads a length-prefixed []float32.
func (r *Reader) F32s() []float32 {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = r.F32()
	}
	return xs
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.F64()
	}
	return xs
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(r.I64())
	}
	return xs
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(r.I64())
	}
	return xs
}

// Bytes reads a length-prefixed raw byte slice written by Writer.Bytes.
func (r *Reader) Bytes() []byte {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	p := make([]byte, n)
	r.readFull(p)
	if r.err != nil {
		return nil
	}
	return p
}

// Words reads a length-prefixed fixed-width []uint64 written by
// Writer.Words.
func (r *Reader) Words() []uint64 {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]uint64, n)
	var b [8]byte
	for i := range xs {
		r.readFull(b[:])
		xs[i] = binary.LittleEndian.Uint64(b[:])
	}
	if r.err != nil {
		return nil
	}
	return xs
}

// Strings reads a length-prefixed []string.
func (r *Reader) Strings() []string {
	n := r.lenPrefix()
	if r.err != nil {
		return nil
	}
	xs := make([]string, n)
	for i := range xs {
		xs[i] = r.String()
	}
	return xs
}

func (r *Reader) readFull(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.fail(fmt.Errorf("wire: read: %w", err))
	}
}

// Magic writes/checks a format tag; use at section boundaries so format
// drift fails loudly instead of mis-parsing.
func (w *Writer) Magic(tag string) { w.String(tag) }

// ExpectMagic verifies the next string equals tag.
func (r *Reader) ExpectMagic(tag string) {
	got := r.String()
	if r.err == nil && got != tag {
		r.fail(fmt.Errorf("wire: expected section %q, found %q", tag, got))
	}
}
