package vec

import (
	"math"
	"testing"
)

// Kernel equivalence suite: every SIMD kernel available on this machine
// must agree with the portable kernel. The design contract (kernel.go) is
// bit-exactness — same lanes, same rounding, same reduction order — so
// these tests demand 0 ulps, which trivially satisfies the ≤1 ulp
// requirement and catches any lane-order or FMA regression immediately.
//
// On hardware without SIMD kernels (or under -tags noasm) the suite
// degenerates to portable-vs-portable and passes vacuously; the CI matrix
// runs both variants.

// equivLengths crosses the unroll boundary (4), the pair boundary of the
// row kernels (2 rows), and the paper's GIST dimensionality (960), plus
// the odd lengths the issue calls out.
var equivLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 64, 127, 128, 960}

// adversarialFill produces values that stress rounding: denormals, huge
// (but overflow-free) magnitudes, exact powers of two, negatives, zeros.
func adversarialFill(n int, seed uint32) []float32 {
	xs := make([]float32, n)
	state := seed
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	for i := range xs {
		switch next() % 8 {
		case 0:
			xs[i] = math.Float32frombits(next() % 8) // denormals near zero
		case 1:
			xs[i] = -math.Float32frombits(next() % 8)
		case 2:
			xs[i] = float32(int32(next())) * 1e12 // large magnitudes, square stays finite in float64
		case 3:
			xs[i] = 0
		case 4:
			xs[i] = float32(math.Ldexp(1, int(next()%64)-32)) // exact powers of two
		default:
			xs[i] = float32(int32(next())) / float32(1<<28)
		}
	}
	return xs
}

func ulpDiff64(a, b float64) uint64 {
	if a == b {
		return 0
	}
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	if ab > bb {
		return ab - bb
	}
	return bb - ab
}

// simdKernelNames lists the non-portable kernels compiled into this binary.
func simdKernelNames() []string {
	var names []string
	for _, k := range kernels {
		if k.name != "portable" {
			names = append(names, k.name)
		}
	}
	return names
}

// withKernel runs f with the named kernel active, restoring the previous
// selection afterwards.
func withKernel(t *testing.T, name string, f func()) {
	t.Helper()
	prev := KernelName()
	if err := UseKernel(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := UseKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

func TestKernelEquivalenceDotSqDist(t *testing.T) {
	for _, name := range simdKernelNames() {
		t.Run(name, func(t *testing.T) {
			for _, n := range equivLengths {
				// Unaligned offsets: slice into a shared backing array at
				// offsets that misalign the data relative to 16/32-byte
				// boundaries, since the assembly must not assume alignment.
				backing := adversarialFill(n+8, 7777+uint32(n))
				qback := adversarialFill(n+8, 13+uint32(n))
				for off := 0; off <= 3; off++ {
					a := backing[off : off+n]
					b := qback[off : off+n]
					wantDot := portableKernel.dot(a, b)
					wantSq := portableKernel.sqDist(a, b)
					var gotDot, gotSq float64
					withKernel(t, name, func() {
						gotDot = Dot(a, b)
						gotSq = SqDist(a, b)
					})
					if d := ulpDiff64(gotDot, wantDot); d > 0 {
						t.Fatalf("n=%d off=%d: Dot %s=%v portable=%v (%d ulps apart, want bit-exact)", n, off, name, gotDot, wantDot, d)
					}
					if d := ulpDiff64(gotSq, wantSq); d > 0 {
						t.Fatalf("n=%d off=%d: SqDist %s=%v portable=%v (%d ulps apart, want bit-exact)", n, off, name, gotSq, wantSq, d)
					}
				}
			}
		})
	}
}

func TestKernelEquivalenceSqDistToRows(t *testing.T) {
	for _, name := range simdKernelNames() {
		t.Run(name, func(t *testing.T) {
			for _, d := range equivLengths {
				if d == 0 {
					continue // a matrix needs d > 0
				}
				const rows = 9
				data := adversarialFill(rows*d, 31+uint32(d))
				q := adversarialFill(d, 41+uint32(d))
				// Odd id count exercises the single-row tail of the paired
				// scan; duplicates and non-monotone order must also work.
				ids := []int32{0, 8, 3, 3, 7, 1, 2}
				want := make([]float64, len(ids))
				portableKernel.sqDistToRows(want, data, d, ids, q)
				got := make([]float64, len(ids))
				withKernel(t, name, func() {
					SqDistToRows(got, data, d, ids, q)
				})
				for i := range ids {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("d=%d id=%d: %s=%v portable=%v (want bit-exact)", d, ids[i], name, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestKernelEquivalenceSQ8Rows(t *testing.T) {
	for _, name := range simdKernelNames() {
		t.Run(name, func(t *testing.T) {
			for _, d := range equivLengths {
				if d == 0 {
					continue
				}
				const rows = 9
				m := NewMatrix(rows, d)
				copy(m.Data, adversarialFill(rows*d, 97+uint32(d)))
				qm := QuantizeSQ8(m)
				q := adversarialFill(d, 101+uint32(d))
				ids := []int32{4, 0, 8, 2, 2, 6, 5}
				want := make([]float64, len(ids))
				portableKernel.sqDistSQ8Rows(want, qm.Codes, qm.D, qm.Min, qm.Scale, ids, q)
				got := make([]float64, len(ids))
				withKernel(t, name, func() {
					SqDistToRowsSQ8(got, qm, ids, q)
				})
				for i := range ids {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("d=%d id=%d: SQ8 %s=%v portable=%v (want bit-exact)", d, ids[i], name, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestUseKernel(t *testing.T) {
	if err := UseKernel("no-such-kernel"); err == nil {
		t.Fatal("UseKernel accepted an unknown kernel name")
	}
	if err := UseKernel("portable"); err != nil {
		t.Fatalf("UseKernel(portable): %v", err)
	}
	if KernelName() != "portable" {
		t.Fatalf("KernelName=%q after UseKernel(portable)", KernelName())
	}
	// Restore the automatic choice for the rest of the package's tests.
	best := kernels[len(kernels)-1]
	if err := UseKernel(best.name); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix accepted an overflowing shape")
		}
	}()
	NewMatrix(math.MaxInt/2, 3)
}
