package vec

import (
	"fmt"

	"bilsh/internal/wire"
)

const matrixMagic = "vec.Matrix/1"

// Encode writes the matrix to w.
func (m *Matrix) Encode(w *wire.Writer) {
	w.Magic(matrixMagic)
	w.Int(m.N)
	w.Int(m.D)
	// Rows are written directly (not length-prefixed per row) since the
	// shape fully determines the payload size.
	for _, v := range m.Data {
		w.F32(v)
	}
}

// DecodeMatrix reads a matrix written by Encode.
func DecodeMatrix(r *wire.Reader) (*Matrix, error) {
	r.ExpectMagic(matrixMagic)
	n := r.Int()
	d := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || d <= 0 || n > wire.MaxLen/4 || d > wire.MaxLen/4 || n*d > wire.MaxLen/4 {
		return nil, fmt.Errorf("vec: decoded matrix shape %dx%d implausible", n, d)
	}
	m := NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = r.F32()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
