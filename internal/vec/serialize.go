package vec

import (
	"fmt"

	"bilsh/internal/wire"
)

const matrixMagic = "vec.Matrix/1"

// Encode writes the matrix to w.
func (m *Matrix) Encode(w *wire.Writer) {
	w.Magic(matrixMagic)
	w.Int(m.N)
	w.Int(m.D)
	// Rows are written directly (not length-prefixed per row) since the
	// shape fully determines the payload size.
	for _, v := range m.Data {
		w.F32(v)
	}
}

// DecodeMatrix reads a matrix written by Encode.
func DecodeMatrix(r *wire.Reader) (*Matrix, error) {
	r.ExpectMagic(matrixMagic)
	n := r.Int()
	d := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || d <= 0 || n > wire.MaxLen/4 || d > wire.MaxLen/4 || n*d > wire.MaxLen/4 {
		return nil, fmt.Errorf("vec: decoded matrix shape %dx%d implausible", n, d)
	}
	m := NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = r.F32()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

const binaryMagic = "vec.BinaryMatrix/1"

// Encode writes the packed binary matrix to w: shape, then the word array
// as one fixed-width payload (see wire.Writer.Words for why not varint).
func (m *BinaryMatrix) Encode(w *wire.Writer) {
	w.Magic(binaryMagic)
	w.Int(m.N)
	w.Int(m.Bits)
	w.Words(m.Words)
}

// DecodeBinaryMatrix reads a packed binary matrix written by Encode.
func DecodeBinaryMatrix(r *wire.Reader) (*BinaryMatrix, error) {
	r.ExpectMagic(binaryMagic)
	n := r.Int()
	bitCount := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || bitCount <= 0 || bitCount > wire.MaxLen ||
		n > wire.MaxLen/8/wordsFor(bitCount) {
		return nil, fmt.Errorf("vec: decoded binary matrix shape %dx%d implausible", n, bitCount)
	}
	words := r.Words()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(words) != n*wordsFor(bitCount) {
		return nil, fmt.Errorf("vec: decoded binary matrix words %d inconsistent with shape %dx%d",
			len(words), n, bitCount)
	}
	return &BinaryMatrix{Words: words, N: n, Bits: bitCount}, nil
}

const quantMagic = "vec.QuantMatrix/1"

// Encode writes the SQ8 matrix to w: shape, per-dimension min/scale, then
// the code rows as one raw byte payload.
func (qm *QuantizedMatrix) Encode(w *wire.Writer) {
	w.Magic(quantMagic)
	w.Int(qm.N)
	w.Int(qm.D)
	w.F32s(qm.Min)
	w.F32s(qm.Scale)
	w.Bytes(qm.Codes)
}

// DecodeQuantizedMatrix reads an SQ8 matrix written by Encode.
func DecodeQuantizedMatrix(r *wire.Reader) (*QuantizedMatrix, error) {
	r.ExpectMagic(quantMagic)
	n := r.Int()
	d := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || d <= 0 || n > wire.MaxLen || d > wire.MaxLen || n > wire.MaxLen/d {
		return nil, fmt.Errorf("vec: decoded quantized matrix shape %dx%d implausible", n, d)
	}
	qm := &QuantizedMatrix{
		N:     n,
		D:     d,
		Min:   r.F32s(),
		Scale: r.F32s(),
		Codes: r.Bytes(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(qm.Min) != d || len(qm.Scale) != d || len(qm.Codes) != n*d {
		return nil, fmt.Errorf("vec: decoded quantized matrix sections inconsistent with shape %dx%d", n, d)
	}
	return qm, nil
}
