//go:build amd64 && !noasm

package vec

// AVX2 kernel selection. The assembly (kernel_amd64.s) uses VCVTPS2PD to
// widen float32 lanes to float64 before any arithmetic, so every multiply,
// subtract and add rounds exactly like the portable kernel's float64
// expressions; FMA is deliberately not used (a fused multiply-add rounds
// once where the portable code rounds twice). Requires AVX2 plus OS-saved
// YMM state, probed below via CPUID/XGETBV — no cgo, no external deps.

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1|2: the OS saves/restores XMM and YMM state on context
	// switch. Without this, AVX registers are not usable even if the CPU
	// advertises them.
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

//go:noescape
func dotBodyAVX2(a, b *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDistBodyAVX2(a, b *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDist2BodyAVX2(a0, a1, q *float32, blocks int, acc *[8]float64)

//go:noescape
func sqDistSQ8BodyAVX2(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDistSQ82BodyAVX2(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64)

// The fixed-name body functions kernel_simd.go calls. They must stay thin
// direct wrappers (inlined, statically resolved) so the //go:noescape on
// the stubs above is visible at the shared wrappers' call sites — see the
// indirection note in kernel_simd.go.

func dotBody(a, b *float32, blocks int, acc *[4]float64)    { dotBodyAVX2(a, b, blocks, acc) }
func sqDistBody(a, b *float32, blocks int, acc *[4]float64) { sqDistBodyAVX2(a, b, blocks, acc) }
func sqDist2Body(a0, a1, q *float32, blocks int, acc *[8]float64) {
	sqDist2BodyAVX2(a0, a1, q, blocks, acc)
}
func sq8Body(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64) {
	sqDistSQ8BodyAVX2(c, q, min, scale, blocks, acc)
}
func sq82Body(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64) {
	sqDistSQ82BodyAVX2(c0, c1, q, min, scale, blocks, acc)
}

func archKernels() []*kernel {
	if !hasAVX2() {
		return nil
	}
	return []*kernel{newSIMDKernel("avx2")}
}
