//go:build noasm || (!amd64 && !arm64)

package vec

// archKernels reports no SIMD kernels: either the build excluded assembly
// with `-tags noasm` or the architecture has no kernel implementation.
// The portable kernel carries the load.
func archKernels() []*kernel { return nil }
