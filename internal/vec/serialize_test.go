package vec

import (
	"bytes"
	"testing"

	"bilsh/internal/wire"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := FromRows([][]float32{{1.5, -2}, {0, 3.25}, {7, 8}})
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	m.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMatrix(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.D != m.D {
		t.Fatalf("shape %dx%d", got.N, got.D)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("data corrupted")
		}
	}
}

func TestDecodeMatrixRejectsBadShape(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("vec.Matrix/1")
	w.Int(-3)
	w.Int(4)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrix(wire.NewReader(&buf)); err == nil {
		t.Fatal("negative N must be rejected")
	}
	buf.Reset()
	w = wire.NewWriter(&buf)
	w.Magic("vec.Matrix/1")
	w.Int(1 << 29)
	w.Int(1 << 29) // N*D overflow the sanity bound
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrix(wire.NewReader(&buf)); err == nil {
		t.Fatal("huge shape must be rejected")
	}
}

func TestDecodeMatrixRejectsTruncation(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}})
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	m.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := DecodeMatrix(wire.NewReader(bytes.NewReader(raw[:len(raw)-2]))); err == nil {
		t.Fatal("truncated payload must be rejected")
	}
	if _, err := DecodeMatrix(wire.NewReader(bytes.NewReader(nil))); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { NewMatrix(-1, 3) },
		func() { NewMatrix(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}
