// Package vec provides the dense vector and matrix primitives used across
// the Bi-level LSH implementation.
//
// Feature vectors are stored as float32 (matching the GIST descriptors the
// paper indexes) while all reductions accumulate in float64 to keep the
// distance computations stable for high-dimensional data.
package vec

import (
	"fmt"
	"math"
)

// Norm returns the Euclidean norm of a. Like Dot, the sum of squares runs
// in four independent accumulator lanes with a fixed reduction order.
func Norm(a []float32) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(a[i])
		s1 += float64(a[i+1]) * float64(a[i+1])
		s2 += float64(a[i+2]) * float64(a[i+2])
		s3 += float64(a[i+3]) * float64(a[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(a[i])
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// Scale multiplies a by s in place.
func Scale(a []float32, s float64) {
	for i := range a {
		a[i] = float32(float64(a[i]) * s)
	}
}

// Normalize scales a to unit length in place. A zero vector is left
// untouched and reported via the return value.
func Normalize(a []float32) bool {
	n := Norm(a)
	if n == 0 {
		return false
	}
	Scale(a, 1/n)
	return true
}

// Add stores a+b into dst. dst may alias a or b. Elementwise, so the 4-way
// unroll changes throughput only, never results.
func Add(dst, a, b []float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] + b[i]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub stores a-b into dst. dst may alias a or b.
func Sub(dst, a, b []float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = a[i] - b[i]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// AXPY adds s*x to y in place.
func AXPY(y []float32, s float64, x []float32) {
	x = x[:len(y)]
	i := 0
	for ; i+4 <= len(y); i += 4 {
		y[i] = float32(float64(y[i]) + s*float64(x[i]))
		y[i+1] = float32(float64(y[i+1]) + s*float64(x[i+1]))
		y[i+2] = float32(float64(y[i+2]) + s*float64(x[i+2]))
		y[i+3] = float32(float64(y[i+3]) + s*float64(x[i+3]))
	}
	for ; i < len(y); i++ {
		y[i] = float32(float64(y[i]) + s*float64(x[i]))
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	c := make([]float32, len(a))
	copy(c, a)
	return c
}

// Matrix is a dense row-major collection of N vectors of dimension D,
// stored in a single allocation so the short-list scan stays cache friendly
// (the layout the paper's GPU implementation uses for its linear arrays).
type Matrix struct {
	Data []float32
	N    int
	D    int
}

// NewMatrix allocates an n x d zero matrix. It rejects shapes whose
// element count overflows int up front, instead of letting n*d wrap and
// surface later as a confusing makeslice panic (or worse, a small
// allocation that under-sizes the matrix).
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: NewMatrix invalid shape %dx%d", n, d))
	}
	if n > math.MaxInt/d {
		panic(fmt.Sprintf("vec: NewMatrix shape %dx%d overflows int", n, d))
	}
	return &Matrix{Data: make([]float32, n*d), N: n, D: d}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		panic("vec: FromRows needs at least one row")
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("vec: FromRows ragged input: row %d has %d dims, want %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.D : (i+1)*m.D] }

// CopyRow copies row i into dst and returns dst.
func (m *Matrix) CopyRow(dst []float32, i int) []float32 {
	return append(dst[:0], m.Row(i)...)
}

// Subset returns a new matrix containing the rows listed in idx, in order.
func (m *Matrix) Subset(idx []int) *Matrix {
	s := NewMatrix(len(idx), m.D)
	for j, i := range idx {
		copy(s.Row(j), m.Row(i))
	}
	return s
}

// Mean computes the arithmetic mean of the rows listed in idx (all rows if
// idx is nil) into a freshly allocated vector.
func (m *Matrix) Mean(idx []int) []float32 {
	mean := make([]float64, m.D)
	n := 0
	add := func(row []float32) {
		for j, v := range row {
			mean[j] += float64(v)
		}
		n++
	}
	if idx == nil {
		for i := 0; i < m.N; i++ {
			add(m.Row(i))
		}
	} else {
		for _, i := range idx {
			add(m.Row(i))
		}
	}
	out := make([]float32, m.D)
	if n == 0 {
		return out
	}
	for j := range mean {
		out[j] = float32(mean[j] / float64(n))
	}
	return out
}

// Stats bundles simple summary statistics of a scalar sample.
type Stats struct {
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	N    int
}

// Summarize computes mean, population standard deviation, min and max of xs.
// An empty sample yields the zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}
