// Package vec provides the dense vector and matrix primitives used across
// the Bi-level LSH implementation.
//
// Feature vectors are stored as float32 (matching the GIST descriptors the
// paper indexes) while all reductions accumulate in float64 to keep the
// distance computations stable for high-dimensional data.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b, accumulated in float64.
// It panics if the lengths differ: mixing dimensionalities is a programming
// error, not a runtime condition.
//
// The loop is unrolled 4-way with independent accumulators so the
// multiplies pipeline instead of serializing on one addition chain; the
// final reduction order is fixed, so results are deterministic run to run
// (though they may differ in the last ulp from a single-accumulator sum).
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDist returns the squared Euclidean distance between a and b, with the
// same 4-way unrolled accumulation as Dot.
func SqDist(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SqDist length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistToRows computes the squared distance from q to each listed row of
// the row-major matrix data (row id occupies data[id*d : (id+1)*d]),
// writing the results into out (len(out) must equal len(ids)). Walking an
// id-sorted list streams the matrix in ascending address order, which is
// what lets the short-list scan run at memory bandwidth. Each per-row
// accumulation matches SqDist exactly, so the two are interchangeable.
func SqDistToRows(out []float64, data []float32, d int, ids []int32, q []float32) {
	if len(out) != len(ids) {
		panic(fmt.Sprintf("vec: SqDistToRows out len %d, want %d", len(out), len(ids)))
	}
	if len(q) != d {
		panic(fmt.Sprintf("vec: SqDistToRows query dim %d, want %d", len(q), d))
	}
	for i, id := range ids {
		out[i] = SqDist(data[int(id)*d:int(id)*d+d], q)
	}
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float32) float64 { return math.Sqrt(SqDist(a, b)) }

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for _, ai := range a {
		s += float64(ai) * float64(ai)
	}
	return math.Sqrt(s)
}

// Scale multiplies a by s in place.
func Scale(a []float32, s float64) {
	for i := range a {
		a[i] = float32(float64(a[i]) * s)
	}
}

// Normalize scales a to unit length in place. A zero vector is left
// untouched and reported via the return value.
func Normalize(a []float32) bool {
	n := Norm(a)
	if n == 0 {
		return false
	}
	Scale(a, 1/n)
	return true
}

// Add stores a+b into dst. dst may alias a or b.
func Add(dst, a, b []float32) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub stores a-b into dst. dst may alias a or b.
func Sub(dst, a, b []float32) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AXPY adds s*x to y in place.
func AXPY(y []float32, s float64, x []float32) {
	for i := range y {
		y[i] = float32(float64(y[i]) + s*float64(x[i]))
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	c := make([]float32, len(a))
	copy(c, a)
	return c
}

// Matrix is a dense row-major collection of N vectors of dimension D,
// stored in a single allocation so the short-list scan stays cache friendly
// (the layout the paper's GPU implementation uses for its linear arrays).
type Matrix struct {
	Data []float32
	N    int
	D    int
}

// NewMatrix allocates an n x d zero matrix.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: NewMatrix invalid shape %dx%d", n, d))
	}
	return &Matrix{Data: make([]float32, n*d), N: n, D: d}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		panic("vec: FromRows needs at least one row")
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("vec: FromRows ragged input: row %d has %d dims, want %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.D : (i+1)*m.D] }

// CopyRow copies row i into dst and returns dst.
func (m *Matrix) CopyRow(dst []float32, i int) []float32 {
	return append(dst[:0], m.Row(i)...)
}

// Subset returns a new matrix containing the rows listed in idx, in order.
func (m *Matrix) Subset(idx []int) *Matrix {
	s := NewMatrix(len(idx), m.D)
	for j, i := range idx {
		copy(s.Row(j), m.Row(i))
	}
	return s
}

// Mean computes the arithmetic mean of the rows listed in idx (all rows if
// idx is nil) into a freshly allocated vector.
func (m *Matrix) Mean(idx []int) []float32 {
	mean := make([]float64, m.D)
	n := 0
	add := func(row []float32) {
		for j, v := range row {
			mean[j] += float64(v)
		}
		n++
	}
	if idx == nil {
		for i := 0; i < m.N; i++ {
			add(m.Row(i))
		}
	} else {
		for _, i := range idx {
			add(m.Row(i))
		}
	}
	out := make([]float32, m.D)
	if n == 0 {
		return out
	}
	for j := range mean {
		out[j] = float32(mean[j] / float64(n))
	}
	return out
}

// Stats bundles simple summary statistics of a scalar sample.
type Stats struct {
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	N    int
}

// Summarize computes mean, population standard deviation, min and max of xs.
// An empty sample yields the zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}
