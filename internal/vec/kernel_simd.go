//go:build (amd64 || arm64) && !noasm

package vec

// Shared Go-side wrappers around the per-architecture assembly bodies.
//
// The assembly computes only the aligned vector body: `blocks` groups of 4
// elements, accumulated into float64 lanes that mirror the portable
// kernel's four scalar accumulators exactly (lane j holds elements j, j+4,
// ...). The wrappers here do everything else in Go — the scalar tail
// (added to lane 0, matching the portable tail loop) and the fixed
// (s0+s1)+(s2+s3) reduction. Keeping tails and reductions in shared Go
// code is what makes bit-equality with the portable kernel a structural
// property instead of something each .s file must re-prove, and it keeps
// the assembly to straight-line counted loops.
//
// Each architecture provides dotBody / sqDistBody / sqDist2Body / sq8Body
// / sq82Body as direct (statically resolvable) calls into its assembly
// stubs. Direct calls matter: the stubs are marked //go:noescape, and the
// compiler only honors that at a static call site. Routing the bodies
// through func values (an earlier draft used a struct of func fields)
// hides the annotation, so every `&acc` below escapes and each distance
// call heap-allocates its accumulator — which the query path's alloc pins
// forbid.
//
// Body contract: acc lanes are OVERWRITTEN by the body (not accumulated
// into), and bodies must only be called with blocks > 0.
//
// Row scans process candidate rows in pairs: the paired bodies maintain
// two independent accumulator chains, which hides the floating-point add
// latency that a single chain serializes on and buys most of the SIMD
// speedup for d≥64 rows (the conversions of q are also shared between the
// two rows).

// newSIMDKernel builds the architecture's kernel under its display name.
func newSIMDKernel(name string) *kernel {
	return &kernel{
		name:          name,
		dot:           simdDot,
		sqDist:        simdSqDist,
		sqDistToRows:  simdSqDistToRows,
		sqDistSQ8Rows: simdSqDistSQ8Rows,
	}
}

func simdDot(x, y []float32) float64 {
	n := len(x)
	blocks := n >> 2
	var acc [4]float64
	if blocks > 0 {
		dotBody(&x[0], &y[0], blocks, &acc)
	}
	s0 := acc[0]
	for i := blocks << 2; i < n; i++ {
		s0 += float64(x[i]) * float64(y[i])
	}
	return (s0 + acc[1]) + (acc[2] + acc[3])
}

func simdSqDist(x, y []float32) float64 {
	n := len(x)
	blocks := n >> 2
	var acc [4]float64
	if blocks > 0 {
		sqDistBody(&x[0], &y[0], blocks, &acc)
	}
	s0 := acc[0]
	for i := blocks << 2; i < n; i++ {
		d := float64(x[i]) - float64(y[i])
		s0 += float64(d * d)
	}
	return (s0 + acc[1]) + (acc[2] + acc[3])
}

func simdSqDistToRows(out []float64, data []float32, d int, ids []int32, q []float32) {
	blocks := d >> 2
	tail := blocks << 2
	var acc [8]float64
	i := 0
	for ; i+2 <= len(ids); i += 2 {
		o0 := int(ids[i]) * d
		o1 := int(ids[i+1]) * d
		if blocks > 0 {
			sqDist2Body(&data[o0], &data[o1], &q[0], blocks, &acc)
		} else {
			acc = [8]float64{}
		}
		s0, s4 := acc[0], acc[4]
		for j := tail; j < d; j++ {
			qv := float64(q[j])
			d0 := float64(data[o0+j]) - qv
			s0 += float64(d0 * d0)
			d1 := float64(data[o1+j]) - qv
			s4 += float64(d1 * d1)
		}
		out[i] = (s0 + acc[1]) + (acc[2] + acc[3])
		out[i+1] = (s4 + acc[5]) + (acc[6] + acc[7])
	}
	if i < len(ids) {
		off := int(ids[i]) * d
		out[i] = simdSqDist(data[off:off+d:off+d], q)
	}
}

func simdSqDistSQ8One(c []uint8, q, min, scale []float32) float64 {
	d := len(q)
	blocks := d >> 2
	var acc [4]float64
	if blocks > 0 {
		sq8Body(&c[0], &q[0], &min[0], &scale[0], blocks, &acc)
	}
	s0 := acc[0]
	for j := blocks << 2; j < d; j++ {
		v := min[j] + float32(scale[j]*float32(c[j]))
		dj := float64(v) - float64(q[j])
		s0 += float64(dj * dj)
	}
	return (s0 + acc[1]) + (acc[2] + acc[3])
}

func simdSqDistSQ8Rows(out []float64, codes []uint8, d int, min, scale []float32, ids []int32, q []float32) {
	blocks := d >> 2
	tail := blocks << 2
	var acc [8]float64
	i := 0
	for ; i+2 <= len(ids); i += 2 {
		o0 := int(ids[i]) * d
		o1 := int(ids[i+1]) * d
		if blocks > 0 {
			sq82Body(&codes[o0], &codes[o1], &q[0], &min[0], &scale[0], blocks, &acc)
		} else {
			acc = [8]float64{}
		}
		s0, s4 := acc[0], acc[4]
		for j := tail; j < d; j++ {
			qv := float64(q[j])
			v0 := min[j] + float32(scale[j]*float32(codes[o0+j]))
			d0 := float64(v0) - qv
			s0 += float64(d0 * d0)
			v1 := min[j] + float32(scale[j]*float32(codes[o1+j]))
			d1 := float64(v1) - qv
			s4 += float64(d1 * d1)
		}
		out[i] = (s0 + acc[1]) + (acc[2] + acc[3])
		out[i+1] = (s4 + acc[5]) + (acc[6] + acc[7])
	}
	if i < len(ids) {
		off := int(ids[i]) * d
		out[i] = simdSqDistSQ8One(codes[off:off+d:off+d], q, min, scale)
	}
}
