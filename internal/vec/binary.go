package vec

import (
	"fmt"
	"math"
	"math/bits"
)

// Packed binary vectors for the Hamming metric family: each vector is a
// fixed number of bits stored in uint64 words, and distance is the
// popcount of the XOR. The layout mirrors Matrix — one flat allocation,
// row-major — so the short-list scan streams words in ascending address
// order exactly like the float32 scan does.
//
// Dispatch note: the Hamming kernels ride the same kernel-selection
// machinery as the float kernels (see kernel.go), but unlike the float
// paths they need no assembly bodies — math/bits.OnesCount64 is a
// compiler intrinsic that lowers to the POPCNT instruction on amd64
// (guarded by the runtime's CPUID check) and to CNT on arm64, so the
// portable Go loop already runs at hardware popcount speed on every
// supported architecture. An arch kernel may still override
// hammingToRows; a nil entry inherits the portable implementation at
// init. Distances are exact integers, so every implementation is
// bit-identical by definition.

// BinaryMatrix is a dense row-major collection of N packed binary vectors
// of Bits bits each. Every row occupies WordsPerRow() uint64 words; bits
// past Bits in the last word of a row are zero.
type BinaryMatrix struct {
	Words []uint64
	N     int
	Bits  int
}

// wordsFor returns the number of uint64 words that hold bits bits.
func wordsFor(bits int) int { return (bits + 63) / 64 }

// NewBinaryMatrix allocates an n-row packed binary matrix of the given
// per-row bit width. Like NewMatrix it rejects shapes whose word count
// overflows int.
func NewBinaryMatrix(n, bitCount int) *BinaryMatrix {
	if n < 0 || bitCount <= 0 {
		panic(fmt.Sprintf("vec: NewBinaryMatrix invalid shape %d rows x %d bits", n, bitCount))
	}
	wpr := wordsFor(bitCount)
	if n > math.MaxInt/wpr {
		panic(fmt.Sprintf("vec: NewBinaryMatrix shape %dx%d overflows int", n, bitCount))
	}
	return &BinaryMatrix{Words: make([]uint64, n*wpr), N: n, Bits: bitCount}
}

// WordsPerRow returns the per-row word stride.
func (m *BinaryMatrix) WordsPerRow() int { return wordsFor(m.Bits) }

// Row returns the i-th packed row as a slice sharing the matrix storage.
func (m *BinaryMatrix) Row(i int) []uint64 {
	wpr := m.WordsPerRow()
	return m.Words[i*wpr : (i+1)*wpr]
}

// SetBit sets bit j of row i.
func (m *BinaryMatrix) SetBit(i, j int) {
	if j < 0 || j >= m.Bits {
		panic(fmt.Sprintf("vec: SetBit %d outside %d-bit rows", j, m.Bits))
	}
	m.Row(i)[j>>6] |= 1 << (uint(j) & 63)
}

// Bit reports bit j of row i.
func (m *BinaryMatrix) Bit(i, j int) bool {
	if j < 0 || j >= m.Bits {
		panic(fmt.Sprintf("vec: Bit %d outside %d-bit rows", j, m.Bits))
	}
	return m.Row(i)[j>>6]&(1<<(uint(j)&63)) != 0
}

// Hamming returns the Hamming distance between two packed vectors of
// equal word length. It panics on a length mismatch, like Dot.
func Hamming(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Hamming length mismatch %d != %d", len(a), len(b)))
	}
	return hammingGeneric(a, b)
}

// HammingToRows computes the Hamming distance from the packed query q to
// each listed row of m, writing results into out as float64 (the type the
// shared top-k heap ranks). Like SqDistToRows, all validation happens
// here once; the kernel runs a check-free inner loop over an id-sorted
// list so the scan streams the word array forward.
func HammingToRows(out []float64, m *BinaryMatrix, ids []int32, q []uint64) {
	if len(out) != len(ids) {
		panic(fmt.Sprintf("vec: HammingToRows out len %d, want %d", len(out), len(ids)))
	}
	wpr := m.WordsPerRow()
	if len(q) != wpr {
		panic(fmt.Sprintf("vec: HammingToRows query words %d, want %d", len(q), wpr))
	}
	maxRow := int32(m.N)
	for _, id := range ids {
		if id < 0 || id >= maxRow {
			panic(fmt.Sprintf("vec: HammingToRows row %d outside matrix of %d rows", id, maxRow))
		}
	}
	active.hammingToRows(out, m.Words, wpr, ids, q)
}

// hammingGeneric is the portable Hamming kernel: XOR + popcount in four
// independent counters, the same unroll shape as the float kernels.
// OnesCount64 lowers to a single hardware instruction where one exists.
func hammingGeneric(a, b []uint64) int {
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += bits.OnesCount64(a[i] ^ b[i])
		s1 += bits.OnesCount64(a[i+1] ^ b[i+1])
		s2 += bits.OnesCount64(a[i+2] ^ b[i+2])
		s3 += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += bits.OnesCount64(a[i] ^ b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

func hammingToRowsGeneric(out []float64, words []uint64, wpr int, ids []int32, q []uint64) {
	for i, id := range ids {
		off := int(id) * wpr
		out[i] = float64(hammingGeneric(words[off:off+wpr:off+wpr], q))
	}
}
