package vec

import (
	"math"
	"testing"
)

// The unrolled kernels accumulate in four independent float64 lanes, so
// their summation order differs from a naive scalar loop and results may
// differ by a few ulps. These tests verify the kernels stay within that
// tolerance of the scalar reference at every length across the unroll
// boundaries, and that SqDistToRows is bit-identical to per-row SqDist
// (the property the rank-path equivalence depends on).

func naiveDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func naiveSqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func fill(n int, seed uint32) []float32 {
	xs := make([]float32, n)
	state := seed
	for i := range xs {
		// xorshift32: cheap deterministic values spanning sign and scale.
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		xs[i] = float32(int32(state)) / float32(1<<28)
	}
	return xs
}

func relClose(got, want float64) bool {
	diff := math.Abs(got - want)
	return diff <= 1e-9*math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
}

func TestDotMatchesNaiveAllLengths(t *testing.T) {
	for n := 0; n <= 70; n++ {
		a, b := fill(n, 1+uint32(n)), fill(n, 1000+uint32(n))
		got, want := Dot(a, b), naiveDot(a, b)
		if !relClose(got, want) {
			t.Fatalf("n=%d: Dot=%v naive=%v", n, got, want)
		}
	}
}

func TestSqDistMatchesNaiveAllLengths(t *testing.T) {
	for n := 0; n <= 70; n++ {
		a, b := fill(n, 2+uint32(n)), fill(n, 2000+uint32(n))
		got, want := SqDist(a, b), naiveSqDist(a, b)
		if !relClose(got, want) {
			t.Fatalf("n=%d: SqDist=%v naive=%v", n, got, want)
		}
		if got < 0 {
			t.Fatalf("n=%d: SqDist=%v negative", n, got)
		}
	}
}

func TestSqDistToRowsMatchesSqDistExactly(t *testing.T) {
	for _, d := range []int{1, 3, 8, 17, 64} {
		const rows = 23
		m := NewMatrix(rows, d)
		copy(m.Data, fill(rows*d, 77))
		q := fill(d, 99)
		ids := []int32{0, 5, 5, 1, 22, 13, 7}
		out := make([]float64, len(ids))
		SqDistToRows(out, m.Data, d, ids, q)
		for i, id := range ids {
			want := SqDist(m.Row(int(id)), q)
			if out[i] != want {
				t.Fatalf("d=%d row %d: SqDistToRows=%v SqDist=%v (must be bit-identical)", d, id, out[i], want)
			}
		}
	}
}

func benchVecs(n int) ([]float32, []float32) {
	return fill(n, 11), fill(n, 13)
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(itoa(n), func(b *testing.B) {
			x, y := benchVecs(n)
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += Dot(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkSqDist(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(itoa(n), func(b *testing.B) {
			x, y := benchVecs(n)
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += SqDist(x, y)
			}
			_ = sink
		})
	}
}

// BenchmarkSqDistToRows sweeps dimension (SIFT-ish 128 and the paper's
// GIST 960) × row count (cache-resident 1k, memory-bound 64k) × kernel, so
// future PRs can diff kernel throughput directly. MB/s counts the float32
// row bytes streamed per scan.
func BenchmarkSqDistToRows(b *testing.B) {
	for _, d := range []int{128, 960} {
		for _, rows := range []int{1 << 10, 1 << 16} {
			m := NewMatrix(rows, d)
			copy(m.Data, fill(rows*d, 21))
			q := fill(d, 23)
			ids := make([]int32, rows)
			for i := range ids {
				ids[i] = int32(i)
			}
			out := make([]float64, rows)
			for _, kern := range KernelNames() {
				b.Run("d"+itoa(d)+"/rows"+itoa(rows)+"/"+kern, func(b *testing.B) {
					prev := KernelName()
					if err := UseKernel(kern); err != nil {
						b.Fatal(err)
					}
					defer UseKernel(prev)
					b.SetBytes(int64(rows) * int64(d) * 4)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						SqDistToRows(out, m.Data, d, ids, q)
					}
				})
			}
		}
	}
}

// BenchmarkSqDistToRowsSQ8 mirrors the float32 sweep over the quantized
// store; bytes/op counts code bytes, so MB/s numbers are comparable as
// "rows scanned" only after dividing by 4.
func BenchmarkSqDistToRowsSQ8(b *testing.B) {
	for _, d := range []int{128, 960} {
		for _, rows := range []int{1 << 10, 1 << 16} {
			m := NewMatrix(rows, d)
			copy(m.Data, fill(rows*d, 21))
			qm := QuantizeSQ8(m)
			q := fill(d, 23)
			ids := make([]int32, rows)
			for i := range ids {
				ids[i] = int32(i)
			}
			out := make([]float64, rows)
			for _, kern := range KernelNames() {
				b.Run("d"+itoa(d)+"/rows"+itoa(rows)+"/"+kern, func(b *testing.B) {
					prev := KernelName()
					if err := UseKernel(kern); err != nil {
						b.Fatal(err)
					}
					defer UseKernel(prev)
					b.SetBytes(int64(rows) * int64(d))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						SqDistToRowsSQ8(out, qm, ids, q)
					}
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
