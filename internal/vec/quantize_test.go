package vec

import (
	"bytes"
	"math"
	"testing"

	"bilsh/internal/wire"
)

// SQ8 round-trip error bound: quantizing to the per-dimension grid and
// dequantizing must land within half a grid step of the original value,
// plus float32 rounding in the dequantization arithmetic. This is the
// bound the exact re-rank in internal/core relies on being small.
func TestQuantizeSQ8ErrorBound(t *testing.T) {
	const n, d = 200, 33
	m := NewMatrix(n, d)
	copy(m.Data, fill(n*d, 4242))
	// Shift some dimensions so min/max are asymmetric, and pin one
	// dimension constant (scale = 0 must reconstruct exactly).
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += float32(j) * 0.25
		}
		row[7] = 3.5
	}
	qm := QuantizeSQ8(m)
	if qm.N != n || qm.D != d {
		t.Fatalf("shape %dx%d, want %dx%d", qm.N, qm.D, n, d)
	}
	buf := make([]float32, d)
	for i := 0; i < n; i++ {
		rec := qm.ReconstructInto(buf, i)
		row := m.Row(i)
		for j := range row {
			scale := float64(qm.Scale[j])
			// Half a grid step plus a few float32 ulps of the
			// reconstruction's magnitude.
			bound := 0.5*scale + 4*(1.0/(1<<24))*(math.Abs(float64(qm.Min[j]))+255*scale)
			if diff := math.Abs(float64(rec[j]) - float64(row[j])); diff > bound {
				t.Fatalf("row %d dim %d: |%v-%v|=%v exceeds bound %v (scale=%v)", i, j, rec[j], row[j], diff, bound, scale)
			}
		}
		if rec[7] != 3.5 {
			t.Fatalf("row %d: constant dimension reconstructed as %v, want exact 3.5", i, rec[7])
		}
	}
}

// The asymmetric scan must equal SqDist against the reconstructed rows
// bit-exactly — the kernels dequantize with the same float32 expression
// ReconstructInto uses.
func TestSQ8ScanMatchesReconstructedSqDist(t *testing.T) {
	for _, d := range []int{1, 3, 17, 64, 960} {
		const rows = 11
		m := NewMatrix(rows, d)
		copy(m.Data, fill(rows*d, 9+uint32(d)))
		qm := QuantizeSQ8(m)
		q := fill(d, 5+uint32(d))
		ids := []int32{10, 0, 3, 3, 7}
		out := make([]float64, len(ids))
		SqDistToRowsSQ8(out, qm, ids, q)
		buf := make([]float32, d)
		for i, id := range ids {
			want := SqDist(qm.ReconstructInto(buf, int(id)), q)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("d=%d row %d: scan=%v reconstruct+SqDist=%v (want bit-exact)", d, id, out[i], want)
			}
		}
	}
}

// Streaming quantization (row accessor, two passes) must produce exactly
// the same codes and parameters as quantizing a materialized matrix —
// this is what guarantees a disk-built SQ8 store equals an in-memory one.
func TestQuantizeSQ8RowsMatchesMatrix(t *testing.T) {
	const n, d = 57, 19
	m := NewMatrix(n, d)
	copy(m.Data, fill(n*d, 321))
	want := QuantizeSQ8(m)
	buf := make([]float32, d)
	got := QuantizeSQ8Rows(n, d, func(i int) []float32 {
		copy(buf, m.Row(i)) // reuse one buffer, as a disk reader would
		return buf
	})
	if !bytes.Equal(got.Codes, want.Codes) {
		t.Fatal("streaming quantization produced different codes")
	}
	for j := 0; j < d; j++ {
		if got.Min[j] != want.Min[j] || got.Scale[j] != want.Scale[j] {
			t.Fatalf("dim %d: min/scale %v/%v, want %v/%v", j, got.Min[j], got.Scale[j], want.Min[j], want.Scale[j])
		}
	}
}

func TestQuantizedMatrixSerializeRoundTrip(t *testing.T) {
	const n, d = 29, 13
	m := NewMatrix(n, d)
	copy(m.Data, fill(n*d, 777))
	qm := QuantizeSQ8(m)

	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	qm.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuantizedMatrix(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != n || got.D != d || !bytes.Equal(got.Codes, qm.Codes) {
		t.Fatal("decoded quantized matrix differs from original")
	}
	for j := 0; j < d; j++ {
		if got.Min[j] != qm.Min[j] || got.Scale[j] != qm.Scale[j] {
			t.Fatalf("dim %d min/scale drifted through serialization", j)
		}
	}

	// Corrupt shape: a truncated stream must error, not panic.
	raw := func() []byte {
		var b bytes.Buffer
		w := wire.NewWriter(&b)
		qm.Encode(w)
		w.Flush()
		return b.Bytes()
	}()
	if _, err := DecodeQuantizedMatrix(wire.NewReader(bytes.NewReader(raw[:len(raw)/2]))); err == nil {
		t.Fatal("truncated quantized matrix decoded without error")
	}
}

func TestQuantizeSQ8Empty(t *testing.T) {
	qm := QuantizeSQ8(NewMatrix(0, 8))
	if qm.N != 0 || qm.D != 8 || len(qm.Codes) != 0 {
		t.Fatalf("empty quantization got N=%d D=%d codes=%d", qm.N, qm.D, len(qm.Codes))
	}
	if qm.ResidentBytes() != 8*8 {
		t.Fatalf("ResidentBytes=%d, want %d (min+scale only)", qm.ResidentBytes(), 8*8)
	}
}

func TestQuantizeResidentBytes(t *testing.T) {
	const n, d = 100, 960
	m := NewMatrix(n, d)
	copy(m.Data, fill(n*d, 55))
	qm := QuantizeSQ8(m)
	floatBytes := 4 * n * d
	if got := qm.ResidentBytes(); got >= floatBytes/3 {
		t.Fatalf("ResidentBytes=%d, want well under a third of the %d float32 bytes", got, floatBytes)
	}
}
