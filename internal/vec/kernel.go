package vec

// Kernel dispatch. The distance kernels (Dot, SqDist, SqDistToRows and the
// SQ8 asymmetric scan) have one portable implementation plus, per
// architecture, a SIMD implementation selected once at package init:
//
//   - amd64: AVX2 (runtime CPUID/XGETBV detection; requires OS YMM state),
//   - arm64: NEON (always present on arm64),
//   - everything else, or any build with `-tags noasm`: portable only.
//
// Every kernel is BIT-IDENTICAL to the portable code by construction: the
// SIMD bodies replicate the portable 4-lane float64 accumulation exactly
// (lane j accumulates elements j, j+4, j+8, ...; the tail is added to lane
// 0; the final reduction is (s0+s1)+(s2+s3) in that order), and the
// portable code carries explicit float64()/float32() conversions at every
// point where a compiler could otherwise contract a multiply-add into an
// FMA. A query therefore returns byte-identical results whether it runs on
// the SIMD or the portable path, which is what lets the equivalence suite
// (kernel_equiv_test.go) demand exact agreement and lets serialized
// indexes promise identical query results across builds.
//
// The selected kernel can be overridden with UseKernel (tests, benchmarks)
// or the BILSH_KERNEL environment variable ("portable", "avx2", "neon") —
// the operational escape hatch when SIMD is suspected, alongside the
// `noasm` build tag which removes the SIMD paths entirely. See
// docs/performance.md.

import (
	"fmt"
	"math"
	"os"
	"sort"
)

// kernel bundles one implementation set. The sqDistToRows and
// sqDistSQ8Rows entries run after the public wrappers validated every
// argument (lengths, dimensions, row ids in range), so implementations
// skip per-row checks.
type kernel struct {
	name          string
	dot           func(a, b []float32) float64
	sqDist        func(a, b []float32) float64
	sqDistToRows  func(out []float64, data []float32, d int, ids []int32, q []float32)
	sqDistSQ8Rows func(out []float64, codes []uint8, d int, min, scale []float32, ids []int32, q []float32)
	// hammingToRows is the packed-binary batch scan (see binary.go). Arch
	// kernels may leave it nil to inherit the portable implementation,
	// whose OnesCount64 loop already lowers to hardware popcount.
	hammingToRows func(out []float64, words []uint64, wpr int, ids []int32, q []uint64)
}

var portableKernel = kernel{
	name:          "portable",
	dot:           dotGeneric,
	sqDist:        sqDistGeneric,
	sqDistToRows:  sqDistToRowsGeneric,
	sqDistSQ8Rows: sqDistSQ8RowsGeneric,
	hammingToRows: hammingToRowsGeneric,
}

// kernels lists every implementation available in this binary on this CPU,
// portable first, most preferred last.
var kernels = []*kernel{&portableKernel}

// active is the selected kernel. It is written only at init time and by
// UseKernel; UseKernel must not race queries (call it during setup or in
// tests, never while another goroutine computes distances).
var active = &portableKernel

func init() {
	kernels = append(kernels, archKernels()...)
	for _, k := range kernels {
		// Entries an arch kernel does not specialize inherit the portable
		// implementation, so dispatch never hits a nil function.
		if k.hammingToRows == nil {
			k.hammingToRows = hammingToRowsGeneric
		}
	}
	active = kernels[len(kernels)-1]
	if name := os.Getenv("BILSH_KERNEL"); name != "" {
		// Best effort: an unknown name keeps the automatic choice (the
		// library cannot log, and failing init over an env var is worse).
		_ = UseKernel(name)
	}
}

// KernelName reports the active kernel ("portable", "avx2", "neon").
func KernelName() string { return active.name }

// KernelNames lists the kernels available in this binary on this CPU.
func KernelNames() []string {
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.name
	}
	sort.Strings(names)
	return names
}

// UseKernel selects the kernel by name, overriding the automatic choice.
// All kernels are bit-identical, so this only affects speed; it exists for
// tests, benchmarks and operational escape. Not safe to call concurrently
// with distance computations.
func UseKernel(name string) error {
	for _, k := range kernels {
		if k.name == name {
			active = k
			return nil
		}
	}
	return fmt.Errorf("vec: unknown kernel %q (available: %v)", name, KernelNames())
}

// Dot returns the inner product of a and b, accumulated in float64.
// It panics if the lengths differ: mixing dimensionalities is a programming
// error, not a runtime condition.
//
// The accumulation runs in four independent float64 lanes so the multiplies
// pipeline instead of serializing on one addition chain; the final
// reduction order is fixed, so results are deterministic run to run and
// identical across kernels (though they may differ in the last ulp from a
// single-accumulator sum).
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	return active.dot(a, b)
}

// SqDist returns the squared Euclidean distance between a and b, with the
// same 4-lane accumulation as Dot.
func SqDist(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SqDist length mismatch %d != %d", len(a), len(b)))
	}
	return active.sqDist(a, b)
}

// SqDistToRows computes the squared distance from q to each listed row of
// the row-major matrix data (row id occupies data[id*d : (id+1)*d]),
// writing the results into out (len(out) must equal len(ids)). Walking an
// id-sorted list streams the matrix in ascending address order, which is
// what lets the short-list scan run at memory bandwidth. Each per-row
// result is bit-identical to SqDist(row, q), so the two are
// interchangeable.
//
// All validation (including every row id's bounds) happens here, once,
// before the scan: the kernels run check-free inner loops.
func SqDistToRows(out []float64, data []float32, d int, ids []int32, q []float32) {
	if len(out) != len(ids) {
		panic(fmt.Sprintf("vec: SqDistToRows out len %d, want %d", len(out), len(ids)))
	}
	if len(q) != d {
		panic(fmt.Sprintf("vec: SqDistToRows query dim %d, want %d", len(q), d))
	}
	if d <= 0 {
		panic(fmt.Sprintf("vec: SqDistToRows dim %d not positive", d))
	}
	maxRow := int32(len(data) / d)
	for _, id := range ids {
		if id < 0 || id >= maxRow {
			panic(fmt.Sprintf("vec: SqDistToRows row %d outside matrix of %d rows", id, maxRow))
		}
	}
	active.sqDistToRows(out, data, d, ids, q)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float32) float64 { return math.Sqrt(SqDist(a, b)) }

// dotGeneric is the portable Dot kernel: 4-way unrolled with independent
// accumulators. float64(x)*float64(y) of two float32 values is exact (a
// 24×24-bit product fits float64's 53-bit mantissa), so there is no
// contraction hazard here — mul+add and FMA round identically.
func dotGeneric(a, b []float32) float64 {
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// sqDistGeneric is the portable SqDist kernel. The float64(d*d)
// conversions are semantically redundant but are explicit rounding
// barriers: the Go spec lets a compiler contract `s += d*d` into an FMA
// (and does on arm64), which would round differently from the SIMD
// kernels' separate multiply and add. The conversion pins mul-then-add
// rounding on every architecture.
func sqDistGeneric(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += float64(d0 * d0)
		s1 += float64(d1 * d1)
		s2 += float64(d2 * d2)
		s3 += float64(d3 * d3)
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += float64(d * d)
	}
	return (s0 + s1) + (s2 + s3)
}

func sqDistToRowsGeneric(out []float64, data []float32, d int, ids []int32, q []float32) {
	for i, id := range ids {
		off := int(id) * d
		out[i] = sqDistGeneric(data[off:off+d:off+d], q)
	}
}
