//go:build arm64 && !noasm

#include "textflag.h"

// NEON bodies for the distance kernels. Same contract as the AVX2 bodies
// (kernel_amd64.s): process `blocks` groups of 4 float32 elements,
// OVERWRITE the caller's accumulator lanes, leave tails and reductions to
// the Go wrappers. Lane mapping: FCVTL widens elements 0,1 (portable
// accumulators s0,s1), FCVTL2 widens elements 2,3 (s2,s3), so acc comes
// back as [s0 s1 s2 s3] exactly like the portable and AVX2 kernels.
//
// The Go assembler has no mnemonics for the vector float64 arithmetic and
// the widening conversions (FCVTL/FCVTL2, FADD/FSUB/FMUL .2D/.4S, UCVTF),
// so those are emitted as WORD-encoded instructions; each carries its
// disassembly. Encodings follow the Arm ARM A64 layouts:
//   fcvtl  vD.2d, vN.2s : 0x0e617800 | N<<5 | D
//   fcvtl2 vD.2d, vN.4s : 0x4e617800 | N<<5 | D
//   fadd   vD.2d, vN.2d, vM.2d : 0x4e60d400 | M<<16 | N<<5 | D
//   fsub   vD.2d, vN.2d, vM.2d : 0x4ee0d400 | M<<16 | N<<5 | D
//   fmul   vD.2d, vN.2d, vM.2d : 0x6e60dc00 | M<<16 | N<<5 | D
//   fadd   vD.4s, vN.4s, vM.4s : 0x4e20d400 | M<<16 | N<<5 | D
//   fmul   vD.4s, vN.4s, vM.4s : 0x6e20dc00 | M<<16 | N<<5 | D
//   ucvtf  vD.4s, vN.4s : 0x6e21d800 | N<<5 | D

// func dotBodyNEON(a, b *float32, blocks int, acc *[4]float64)
TEXT ·dotBodyNEON(SB), NOSPLIT, $0-32
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD blocks+16(FP), R2
	MOVD acc+24(FP), R3
	VEOR V0.B16, V0.B16, V0.B16 // s0,s1
	VEOR V1.B16, V1.B16, V1.B16 // s2,s3

dotloop:
	VLD1.P 16(R0), [V2.S4]
	VLD1.P 16(R1), [V3.S4]
	WORD $0x0e617844 // fcvtl  v4.2d, v2.2s
	WORD $0x4e617845 // fcvtl2 v5.2d, v2.4s
	WORD $0x0e617866 // fcvtl  v6.2d, v3.2s
	WORD $0x4e617867 // fcvtl2 v7.2d, v3.4s
	WORD $0x6e66dc84 // fmul v4.2d, v4.2d, v6.2d
	WORD $0x6e67dca5 // fmul v5.2d, v5.2d, v7.2d
	WORD $0x4e64d400 // fadd v0.2d, v0.2d, v4.2d
	WORD $0x4e65d421 // fadd v1.2d, v1.2d, v5.2d
	SUBS $1, R2, R2
	BNE  dotloop

	VST1 [V0.D2, V1.D2], (R3)
	RET

// func sqDistBodyNEON(a, b *float32, blocks int, acc *[4]float64)
TEXT ·sqDistBodyNEON(SB), NOSPLIT, $0-32
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD blocks+16(FP), R2
	MOVD acc+24(FP), R3
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16

sqloop:
	VLD1.P 16(R0), [V2.S4]
	VLD1.P 16(R1), [V3.S4]
	WORD $0x0e617844 // fcvtl  v4.2d, v2.2s
	WORD $0x4e617845 // fcvtl2 v5.2d, v2.4s
	WORD $0x0e617866 // fcvtl  v6.2d, v3.2s
	WORD $0x4e617867 // fcvtl2 v7.2d, v3.4s
	WORD $0x4ee6d484 // fsub v4.2d, v4.2d, v6.2d
	WORD $0x4ee7d4a5 // fsub v5.2d, v5.2d, v7.2d
	WORD $0x6e64dc84 // fmul v4.2d, v4.2d, v4.2d
	WORD $0x6e65dca5 // fmul v5.2d, v5.2d, v5.2d
	WORD $0x4e64d400 // fadd v0.2d, v0.2d, v4.2d
	WORD $0x4e65d421 // fadd v1.2d, v1.2d, v5.2d
	SUBS $1, R2, R2
	BNE  sqloop

	VST1 [V0.D2, V1.D2], (R3)
	RET

// func sqDist2BodyNEON(a0, a1, q *float32, blocks int, acc *[8]float64)
//
// Two rows, one query: V0/V1 accumulate row 0, V16/V17 row 1 — four
// independent add chains, and the query widening is shared.
TEXT ·sqDist2BodyNEON(SB), NOSPLIT, $0-40
	MOVD a0+0(FP), R0
	MOVD a1+8(FP), R1
	MOVD q+16(FP), R2
	MOVD blocks+24(FP), R3
	MOVD acc+32(FP), R4
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16

sq2loop:
	VLD1.P 16(R2), [V2.S4] // q
	VLD1.P 16(R0), [V3.S4] // row 0
	VLD1.P 16(R1), [V4.S4] // row 1
	WORD $0x0e617845 // fcvtl  v5.2d, v2.2s   (q lanes 0,1)
	WORD $0x4e617846 // fcvtl2 v6.2d, v2.4s   (q lanes 2,3)
	WORD $0x0e617867 // fcvtl  v7.2d, v3.2s
	WORD $0x4e617872 // fcvtl2 v18.2d, v3.4s
	WORD $0x0e617893 // fcvtl  v19.2d, v4.2s
	WORD $0x4e617894 // fcvtl2 v20.2d, v4.4s
	WORD $0x4ee5d4e7 // fsub v7.2d, v7.2d, v5.2d
	WORD $0x4ee6d652 // fsub v18.2d, v18.2d, v6.2d
	WORD $0x4ee5d673 // fsub v19.2d, v19.2d, v5.2d
	WORD $0x4ee6d694 // fsub v20.2d, v20.2d, v6.2d
	WORD $0x6e67dce7 // fmul v7.2d, v7.2d, v7.2d
	WORD $0x6e72de52 // fmul v18.2d, v18.2d, v18.2d
	WORD $0x6e73de73 // fmul v19.2d, v19.2d, v19.2d
	WORD $0x6e74de94 // fmul v20.2d, v20.2d, v20.2d
	WORD $0x4e67d400 // fadd v0.2d, v0.2d, v7.2d
	WORD $0x4e72d421 // fadd v1.2d, v1.2d, v18.2d
	WORD $0x4e73d610 // fadd v16.2d, v16.2d, v19.2d
	WORD $0x4e74d631 // fadd v17.2d, v17.2d, v20.2d
	SUBS $1, R3, R3
	BNE  sq2loop

	VST1.P [V0.D2, V1.D2], 32(R4)
	VST1 [V16.D2, V17.D2], (R4)
	RET

// func sqDistSQ8BodyNEON(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64)
//
// Asymmetric SQ8: load 4 codes as one 32-bit lane, widen bytes->words
// with USHLL #0 twice, UCVTF to float32 (exact for 0..255), dequantize
// v = min + scale*code in float32 (matching the portable expression),
// then the float64 squared-difference accumulation.
TEXT ·sqDistSQ8BodyNEON(SB), NOSPLIT, $0-48
	MOVD c+0(FP), R0
	MOVD q+8(FP), R1
	MOVD min+16(FP), R2
	MOVD scale+24(FP), R3
	MOVD blocks+32(FP), R4
	MOVD acc+40(FP), R5
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16

sq8loop:
	FMOVS.P 4(R0), F2 // 4 codes -> v2.s[0]
	VUSHLL $0, V2.B8, V2.H8
	VUSHLL $0, V2.H4, V2.S4
	WORD $0x6e21d842 // ucvtf v2.4s, v2.4s
	VLD1.P 16(R3), [V4.S4] // scale
	WORD $0x6e24dc42 // fmul v2.4s, v2.4s, v4.4s
	VLD1.P 16(R2), [V5.S4] // min
	WORD $0x4e25d442 // fadd v2.4s, v2.4s, v5.4s
	VLD1.P 16(R1), [V3.S4] // q
	WORD $0x0e617846 // fcvtl  v6.2d, v2.2s
	WORD $0x4e617847 // fcvtl2 v7.2d, v2.4s
	WORD $0x0e617872 // fcvtl  v18.2d, v3.2s
	WORD $0x4e617873 // fcvtl2 v19.2d, v3.4s
	WORD $0x4ef2d4c6 // fsub v6.2d, v6.2d, v18.2d
	WORD $0x4ef3d4e7 // fsub v7.2d, v7.2d, v19.2d
	WORD $0x6e66dcc6 // fmul v6.2d, v6.2d, v6.2d
	WORD $0x6e67dce7 // fmul v7.2d, v7.2d, v7.2d
	WORD $0x4e66d400 // fadd v0.2d, v0.2d, v6.2d
	WORD $0x4e67d421 // fadd v1.2d, v1.2d, v7.2d
	SUBS $1, R4, R4
	BNE  sq8loop

	VST1 [V0.D2, V1.D2], (R5)
	RET

// func sqDistSQ82BodyNEON(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64)
//
// Two SQ8 rows, one query; min/scale/q loads and widenings are shared and
// the four accumulator chains stay independent.
TEXT ·sqDistSQ82BodyNEON(SB), NOSPLIT, $0-56
	MOVD c0+0(FP), R0
	MOVD c1+8(FP), R1
	MOVD q+16(FP), R2
	MOVD min+24(FP), R3
	MOVD scale+32(FP), R4
	MOVD blocks+40(FP), R5
	MOVD acc+48(FP), R6
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16

sq82loop:
	FMOVS.P 4(R0), F2 // row 0 codes
	FMOVS.P 4(R1), F3 // row 1 codes
	VUSHLL $0, V2.B8, V2.H8
	VUSHLL $0, V2.H4, V2.S4
	VUSHLL $0, V3.B8, V3.H8
	VUSHLL $0, V3.H4, V3.S4
	WORD $0x6e21d842 // ucvtf v2.4s, v2.4s
	WORD $0x6e21d863 // ucvtf v3.4s, v3.4s
	VLD1.P 16(R4), [V4.S4] // scale
	WORD $0x6e24dc42 // fmul v2.4s, v2.4s, v4.4s
	WORD $0x6e24dc63 // fmul v3.4s, v3.4s, v4.4s
	VLD1.P 16(R3), [V5.S4] // min
	WORD $0x4e25d442 // fadd v2.4s, v2.4s, v5.4s
	WORD $0x4e25d463 // fadd v3.4s, v3.4s, v5.4s
	VLD1.P 16(R2), [V6.S4] // q
	WORD $0x0e6178d2 // fcvtl  v18.2d, v6.2s  (q lanes 0,1)
	WORD $0x4e6178d3 // fcvtl2 v19.2d, v6.4s  (q lanes 2,3)
	WORD $0x0e617847 // fcvtl  v7.2d, v2.2s
	WORD $0x4e617854 // fcvtl2 v20.2d, v2.4s
	WORD $0x0e617875 // fcvtl  v21.2d, v3.2s
	WORD $0x4e617876 // fcvtl2 v22.2d, v3.4s
	WORD $0x4ef2d4e7 // fsub v7.2d, v7.2d, v18.2d
	WORD $0x4ef3d694 // fsub v20.2d, v20.2d, v19.2d
	WORD $0x4ef2d6b5 // fsub v21.2d, v21.2d, v18.2d
	WORD $0x4ef3d6d6 // fsub v22.2d, v22.2d, v19.2d
	WORD $0x6e67dce7 // fmul v7.2d, v7.2d, v7.2d
	WORD $0x6e74de94 // fmul v20.2d, v20.2d, v20.2d
	WORD $0x6e75deb5 // fmul v21.2d, v21.2d, v21.2d
	WORD $0x6e76ded6 // fmul v22.2d, v22.2d, v22.2d
	WORD $0x4e67d400 // fadd v0.2d, v0.2d, v7.2d
	WORD $0x4e74d421 // fadd v1.2d, v1.2d, v20.2d
	WORD $0x4e75d610 // fadd v16.2d, v16.2d, v21.2d
	WORD $0x4e76d631 // fadd v17.2d, v17.2d, v22.2d
	SUBS $1, R5, R5
	BNE  sq82loop

	VST1.P [V0.D2, V1.D2], 32(R6)
	VST1 [V16.D2, V17.D2], (R6)
	RET
