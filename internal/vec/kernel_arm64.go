//go:build arm64 && !noasm

package vec

// NEON kernel selection. NEON (ASIMD) is architecturally mandatory on
// AArch64, so there is no runtime feature probe — the kernel is always
// available; `-tags noasm` or BILSH_KERNEL=portable disable it.
//
// The assembly (kernel_arm64.s) widens float32 lanes to float64 with
// FCVTL/FCVTL2 before any arithmetic and never uses fused multiply-add,
// so it rounds identically to the portable kernel (which carries explicit
// conversions precisely because the Go compiler will otherwise fuse
// mul+add into FMADD on arm64).

//go:noescape
func dotBodyNEON(a, b *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDistBodyNEON(a, b *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDist2BodyNEON(a0, a1, q *float32, blocks int, acc *[8]float64)

//go:noescape
func sqDistSQ8BodyNEON(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64)

//go:noescape
func sqDistSQ82BodyNEON(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64)

// The fixed-name body functions kernel_simd.go calls. They must stay thin
// direct wrappers (inlined, statically resolved) so the //go:noescape on
// the stubs above is visible at the shared wrappers' call sites — see the
// indirection note in kernel_simd.go.

func dotBody(a, b *float32, blocks int, acc *[4]float64)    { dotBodyNEON(a, b, blocks, acc) }
func sqDistBody(a, b *float32, blocks int, acc *[4]float64) { sqDistBodyNEON(a, b, blocks, acc) }
func sqDist2Body(a0, a1, q *float32, blocks int, acc *[8]float64) {
	sqDist2BodyNEON(a0, a1, q, blocks, acc)
}
func sq8Body(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64) {
	sqDistSQ8BodyNEON(c, q, min, scale, blocks, acc)
}
func sq82Body(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64) {
	sqDistSQ82BodyNEON(c0, c1, q, min, scale, blocks, acc)
}

func archKernels() []*kernel {
	return []*kernel{newSIMDKernel("neon")}
}
