package vec

import (
	"bytes"
	"math/rand"
	"testing"

	"bilsh/internal/wire"
)

// naiveHamming is the bit-by-bit reference the packed kernels must match.
func naiveHamming(a, b []uint64) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for j := 0; j < 64; j++ {
			if x&(1<<uint(j)) != 0 {
				n++
			}
		}
	}
	return n
}

func randWords(rng *rand.Rand, n int) []uint64 {
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	return xs
}

func TestBinaryMatrixBits(t *testing.T) {
	m := NewBinaryMatrix(3, 70) // 2 words per row, 58 pad bits
	if got := m.WordsPerRow(); got != 2 {
		t.Fatalf("WordsPerRow = %d, want 2", got)
	}
	m.SetBit(1, 0)
	m.SetBit(1, 63)
	m.SetBit(1, 64)
	m.SetBit(1, 69)
	for j := 0; j < 70; j++ {
		want := j == 0 || j == 63 || j == 64 || j == 69
		if m.Bit(1, j) != want {
			t.Fatalf("Bit(1, %d) = %v, want %v", j, m.Bit(1, j), want)
		}
		if m.Bit(0, j) || m.Bit(2, j) {
			t.Fatalf("bit %d leaked into a neighboring row", j)
		}
	}
	if got := Hamming(m.Row(1), m.Row(0)); got != 4 {
		t.Fatalf("Hamming = %d, want 4", got)
	}
}

// TestHammingMatchesNaive crosses the 4-word unroll boundary with random
// payloads.
func TestHammingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, words := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		for trial := 0; trial < 20; trial++ {
			a, b := randWords(rng, words), randWords(rng, words)
			if got, want := Hamming(a, b), naiveHamming(a, b); got != want {
				t.Fatalf("words=%d: Hamming = %d, want %d", words, got, want)
			}
		}
	}
}

// TestHammingToRowsKernels pins bit-identity of the batch scan across
// every kernel available in this binary (the Hamming analogue of the
// float kernel equivalence suite; distances are integers, so identity is
// exact equality).
func TestHammingToRowsKernels(t *testing.T) {
	orig := KernelName()
	defer UseKernel(orig) //nolint:errcheck

	rng := rand.New(rand.NewSource(11))
	m := NewBinaryMatrix(64, 200)
	for i := range m.Words {
		m.Words[i] = rng.Uint64()
	}
	// Clear pad bits so rows are well-formed sketches.
	wpr := m.WordsPerRow()
	pad := uint64(1)<<(uint(m.Bits)&63) - 1
	for i := 0; i < m.N; i++ {
		m.Row(i)[wpr-1] &= pad
	}
	q := randWords(rng, wpr)
	q[wpr-1] &= pad
	ids := []int32{0, 63, 7, 7, 31, 1}

	want := make([]float64, len(ids))
	hammingToRowsGeneric(want, m.Words, wpr, ids, q)
	for i, id := range ids {
		if int(want[i]) != naiveHamming(m.Row(int(id)), q) {
			t.Fatalf("portable row %d disagrees with naive popcount", id)
		}
	}
	for _, name := range KernelNames() {
		if err := UseKernel(name); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(ids))
		HammingToRows(got, m, ids, q)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("kernel %s: row %d distance %g, want %g", name, ids[i], got[i], want[i])
			}
		}
	}
}

func TestBinaryMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewBinaryMatrix(5, 130)
	for i := range m.Words {
		m.Words[i] = rng.Uint64()
	}
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	m.Encode(ww)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinaryMatrix(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.Bits != m.Bits {
		t.Fatalf("shape %dx%d, want %dx%d", got.N, got.Bits, m.N, m.Bits)
	}
	for i := range m.Words {
		if got.Words[i] != m.Words[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got.Words[i], m.Words[i])
		}
	}
}

func TestDecodeBinaryMatrixRejectsMismatch(t *testing.T) {
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	ww.Magic("vec.BinaryMatrix/1")
	ww.Int(4)
	ww.Int(64)
	ww.Words([]uint64{1, 2, 3}) // 4 rows x 1 word needs 4 words
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinaryMatrix(wire.NewReader(&buf)); err == nil {
		t.Fatal("decoder accepted a word count inconsistent with the shape")
	}
}
