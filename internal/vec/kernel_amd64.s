//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 bodies for the distance kernels. Each body processes `blocks`
// groups of 4 float32 elements and OVERWRITES the caller's accumulator
// array; the Go wrappers in kernel_simd.go handle tails and reductions.
//
// Bit-exactness contract (see kernel.go): float32 lanes are widened to
// float64 with VCVTPS2PD (exact), then multiplied/subtracted/added in
// float64 — the same sequence of IEEE operations, in the same lane order,
// as the portable kernel's four scalar accumulators. No FMA anywhere.
//
// Plan9 operand order is reversed from Intel: VSUBPD A, B, C means
// C = B - A.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotBodyAVX2(a, b *float32, blocks int, acc *[4]float64)
TEXT ·dotBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ blocks+16(FP), CX
	MOVQ acc+24(FP), DX
	VXORPD Y0, Y0, Y0

dotloop:
	VCVTPS2PD (SI), Y1 // 4 x float32 -> 4 x float64
	VCVTPS2PD (DI), Y2
	VMULPD Y2, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	DECQ CX
	JNZ  dotloop

	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func sqDistBodyAVX2(a, b *float32, blocks int, acc *[4]float64)
TEXT ·sqDistBodyAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ blocks+16(FP), CX
	MOVQ acc+24(FP), DX
	VXORPD Y0, Y0, Y0

sqloop:
	VCVTPS2PD (SI), Y1
	VCVTPS2PD (DI), Y2
	VSUBPD Y2, Y1, Y1 // Y1 = a - b
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	DECQ CX
	JNZ  sqloop

	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func sqDist2BodyAVX2(a0, a1, q *float32, blocks int, acc *[8]float64)
//
// Two rows against one query. The two accumulator chains (Y0, Y1) are
// independent, so the adds pipeline instead of serializing on vaddpd
// latency — this is where the bulk of the shortlist-scan speedup comes
// from. The query conversion is shared between the rows.
TEXT ·sqDist2BodyAVX2(SB), NOSPLIT, $0-40
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ q+16(FP), R8
	MOVQ blocks+24(FP), CX
	MOVQ acc+32(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

sq2loop:
	VCVTPS2PD (R8), Y2 // q
	VCVTPS2PD (SI), Y3 // row 0
	VCVTPS2PD (DI), Y4 // row 1
	VSUBPD Y2, Y3, Y3
	VSUBPD Y2, Y4, Y4
	VMULPD Y3, Y3, Y3
	VMULPD Y4, Y4, Y4
	VADDPD Y3, Y0, Y0
	VADDPD Y4, Y1, Y1
	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	DECQ CX
	JNZ  sq2loop

	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET

// func sqDistSQ8BodyAVX2(c *uint8, q, min, scale *float32, blocks int, acc *[4]float64)
//
// Asymmetric SQ8 distance: dequantize v = min + scale*float32(code) in
// float32 (matching the portable expression exactly), widen to float64,
// then accumulate the squared difference against the float32-widened
// query.
TEXT ·sqDistSQ8BodyAVX2(SB), NOSPLIT, $0-48
	MOVQ c+0(FP), SI
	MOVQ q+8(FP), R8
	MOVQ min+16(FP), R9
	MOVQ scale+24(FP), R10
	MOVQ blocks+32(FP), CX
	MOVQ acc+40(FP), DX
	VXORPD Y0, Y0, Y0

sq8loop:
	VPMOVZXBD (SI), X2  // 4 codes -> 4 x int32
	VCVTDQ2PS X2, X2    // -> float32 (exact: codes are 0..255)
	VMOVUPS   (R10), X4
	VMULPS    X4, X2, X2 // scale * code
	VMOVUPS   (R9), X5
	VADDPS    X5, X2, X2 // + min
	VCVTPS2PD X2, Y2     // dequantized row -> float64
	VCVTPS2PD (R8), Y4   // q -> float64
	VSUBPD    Y4, Y2, Y2
	VMULPD    Y2, Y2, Y2
	VADDPD    Y2, Y0, Y0
	ADDQ $4, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	DECQ CX
	JNZ  sq8loop

	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func sqDistSQ82BodyAVX2(c0, c1 *uint8, q, min, scale *float32, blocks int, acc *[8]float64)
//
// Two SQ8 rows against one query; min/scale/q loads and conversions are
// shared, and the two float64 accumulator chains stay independent.
TEXT ·sqDistSQ82BodyAVX2(SB), NOSPLIT, $0-56
	MOVQ c0+0(FP), SI
	MOVQ c1+8(FP), DI
	MOVQ q+16(FP), R8
	MOVQ min+24(FP), R9
	MOVQ scale+32(FP), R10
	MOVQ blocks+40(FP), CX
	MOVQ acc+48(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

sq82loop:
	VPMOVZXBD (SI), X2
	VPMOVZXBD (DI), X3
	VCVTDQ2PS X2, X2
	VCVTDQ2PS X3, X3
	VMOVUPS   (R10), X4
	VMULPS    X4, X2, X2
	VMULPS    X4, X3, X3
	VMOVUPS   (R9), X5
	VADDPS    X5, X2, X2
	VADDPS    X5, X3, X3
	VCVTPS2PD X2, Y2
	VCVTPS2PD X3, Y3
	VCVTPS2PD (R8), Y4
	VSUBPD    Y4, Y2, Y2
	VSUBPD    Y4, Y3, Y3
	VMULPD    Y2, Y2, Y2
	VMULPD    Y3, Y3, Y3
	VADDPD    Y2, Y0, Y0
	VADDPD    Y3, Y1, Y1
	ADDQ $4, SI
	ADDQ $4, DI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	DECQ CX
	JNZ  sq82loop

	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET
