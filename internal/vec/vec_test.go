package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestSqDistAndDist(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestNormAndNormalize(t *testing.T) {
	a := []float32{3, 4}
	if got := Norm(a); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if !Normalize(a) {
		t.Fatal("Normalize reported zero vector")
	}
	if !almostEq(Norm(a), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v, want 1", Norm(a))
	}
	z := []float32{0, 0}
	if Normalize(z) {
		t.Fatal("Normalize of zero vector should return false")
	}
}

func TestAddSubAXPY(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{10, 20}
	dst := make([]float32, 2)
	Add(dst, a, b)
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if dst[0] != 9 || dst[1] != 18 {
		t.Fatalf("Sub = %v", dst)
	}
	y := []float32{1, 1}
	AXPY(y, 2, []float32{3, 4})
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float32{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares storage with source")
	}
}

func TestMatrixRowsAndSubset(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.N != 3 || m.D != 2 {
		t.Fatalf("shape = %dx%d", m.N, m.D)
	}
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	s := m.Subset([]int{2, 0})
	if s.Row(0)[0] != 5 || s.Row(1)[0] != 1 {
		t.Fatalf("Subset rows wrong: %v", s.Data)
	}
	// Subset must copy, not alias.
	s.Row(0)[0] = -1
	if m.Row(2)[0] != 5 {
		t.Fatal("Subset aliases parent storage")
	}
}

func TestMatrixMean(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	mean := m.Mean(nil)
	if mean[0] != 2 || mean[1] != 3 {
		t.Fatalf("Mean = %v", mean)
	}
	sub := m.Mean([]int{1})
	if sub[0] != 3 || sub[1] != 4 {
		t.Fatalf("Mean(subset) = %v", sub)
	}
	if got := m.Mean([]int{}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("Mean(empty) = %v, want zeros", got)
	}
}

func TestCopyRowReusesBuffer(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	buf := make([]float32, 0, 2)
	r := m.CopyRow(buf, 1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("CopyRow = %v", r)
	}
	r[0] = -5
	if m.Row(1)[0] != 3 {
		t.Fatal("CopyRow aliases matrix storage")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("Std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

// Property: Cauchy-Schwarz, |a.b| <= |a||b|, and SqDist expansion
// |a-b|^2 = |a|^2 + |b|^2 - 2 a.b hold for random vectors.
func TestDotDistProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(32)
		a := make([]float32, d)
		b := make([]float32, d)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		dot := Dot(a, b)
		if math.Abs(dot) > Norm(a)*Norm(b)+1e-4 {
			return false
		}
		lhs := SqDist(a, b)
		rhs := Norm(a)*Norm(a) + Norm(b)*Norm(b) - 2*dot
		return almostEq(lhs, rhs, 1e-3*(1+math.Abs(rhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistSymmetryAndTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(16)
		v := make([][]float32, 3)
		for i := range v {
			v[i] = make([]float32, d)
			for j := range v[i] {
				v[i][j] = float32(rng.NormFloat64())
			}
		}
		ab, ba := Dist(v[0], v[1]), Dist(v[1], v[0])
		if ab != ba {
			return false
		}
		// Triangle inequality with small float slack.
		return Dist(v[0], v[2]) <= Dist(v[0], v[1])+Dist(v[1], v[2])+1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
