package vec

import (
	"fmt"
	"math"
)

// QuantizedMatrix is an SQ8 scalar-quantized row store: each dimension j
// is affinely mapped from [Min[j], Min[j]+255*Scale[j]] onto the byte
// codes 0..255, so a row costs D bytes resident instead of 4*D — the ~4×
// footprint/bandwidth reduction that makes the quantized shortlist scan
// cheap. Distances against it are asymmetric: the query stays float32 and
// each stored code is dequantized on the fly as
//
//	v = Min[j] + float32(Scale[j] * float32(code))
//
// (float32 arithmetic, matching the SIMD dequantization lane for lane).
// The per-dimension absolute reconstruction error is at most Scale[j]/2
// plus float32 rounding — see the bound test in quantize_test.go — which
// is why the scan's shortlist must be re-ranked with exact float32 rows
// before results leave the index (internal/core does this).
type QuantizedMatrix struct {
	Codes []uint8 // row-major, row i at Codes[i*D : (i+1)*D]
	N, D  int
	Min   []float32 // per-dimension minimum, len D
	Scale []float32 // per-dimension (max-min)/255, len D; 0 for constant dims
}

// QuantizeSQ8 builds the SQ8 representation of m.
func QuantizeSQ8(m *Matrix) *QuantizedMatrix {
	return QuantizeSQ8Rows(m.N, m.D, m.Row)
}

// QuantizeSQ8Rows builds an SQ8 matrix from a row accessor, so callers can
// quantize without materializing a float32 Matrix (the disk-backed index
// streams rows through this). row is called in two ascending passes —
// min/max first, then encoding — and the returned slice is only read
// before the next call, so an accessor may reuse one buffer.
func QuantizeSQ8Rows(n, d int, row func(i int) []float32) *QuantizedMatrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: QuantizeSQ8Rows invalid shape %dx%d", n, d))
	}
	if n > math.MaxInt/d {
		panic(fmt.Sprintf("vec: QuantizeSQ8Rows shape %dx%d overflows int", n, d))
	}
	qm := &QuantizedMatrix{
		Codes: make([]uint8, n*d),
		N:     n,
		D:     d,
		Min:   make([]float32, d),
		Scale: make([]float32, d),
	}
	if n == 0 {
		return qm
	}
	max := make([]float32, d)
	copy(qm.Min, row(0)[:d])
	copy(max, qm.Min)
	for i := 1; i < n; i++ {
		r := row(i)[:d]
		for j, v := range r {
			if v < qm.Min[j] {
				qm.Min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	for j := range qm.Scale {
		qm.Scale[j] = (max[j] - qm.Min[j]) / 255
	}
	for i := 0; i < n; i++ {
		r := row(i)[:d]
		c := qm.Codes[i*d : (i+1)*d]
		for j, v := range r {
			c[j] = quantizeCode(v, qm.Min[j], qm.Scale[j])
		}
	}
	return qm
}

// quantizeCode maps v to its byte code. The division runs in float64 so
// encoding is deterministic across architectures; rounding is
// round-half-away-from-zero via math.Round, and the clamp absorbs the
// float rounding that can push v=max a hair past 255.
func quantizeCode(v, min, scale float32) uint8 {
	if scale == 0 {
		return 0
	}
	t := math.Round((float64(v) - float64(min)) / float64(scale))
	if t <= 0 {
		return 0
	}
	if t >= 255 {
		return 255
	}
	return uint8(t)
}

// Row returns the i-th code row sharing the matrix storage.
func (qm *QuantizedMatrix) Row(i int) []uint8 { return qm.Codes[i*qm.D : (i+1)*qm.D] }

// ReconstructInto dequantizes row i into dst (which must have capacity D)
// and returns dst[:D]. The arithmetic matches the scan kernels exactly.
func (qm *QuantizedMatrix) ReconstructInto(dst []float32, i int) []float32 {
	dst = dst[:qm.D]
	c := qm.Row(i)
	for j := range dst {
		dst[j] = qm.Min[j] + float32(qm.Scale[j]*float32(c[j]))
	}
	return dst
}

// ResidentBytes reports the memory the quantized store keeps resident,
// for comparison against the 4*N*D bytes of the float32 matrix.
func (qm *QuantizedMatrix) ResidentBytes() int {
	return len(qm.Codes) + 4*len(qm.Min) + 4*len(qm.Scale)
}

// SqDistToRowsSQ8 computes the asymmetric squared distance from float32
// query q to each listed SQ8 row, writing results into out. Validation
// mirrors SqDistToRows: everything is checked here once, and the kernels
// run check-free.
func SqDistToRowsSQ8(out []float64, qm *QuantizedMatrix, ids []int32, q []float32) {
	if len(out) != len(ids) {
		panic(fmt.Sprintf("vec: SqDistToRowsSQ8 out len %d, want %d", len(out), len(ids)))
	}
	if len(q) != qm.D {
		panic(fmt.Sprintf("vec: SqDistToRowsSQ8 query dim %d, want %d", len(q), qm.D))
	}
	if len(qm.Min) != qm.D || len(qm.Scale) != qm.D {
		panic(fmt.Sprintf("vec: SqDistToRowsSQ8 min/scale len %d/%d, want %d", len(qm.Min), len(qm.Scale), qm.D))
	}
	maxRow := int32(len(qm.Codes) / qm.D)
	for _, id := range ids {
		if id < 0 || id >= maxRow {
			panic(fmt.Sprintf("vec: SqDistToRowsSQ8 row %d outside matrix of %d rows", id, maxRow))
		}
	}
	active.sqDistSQ8Rows(out, qm.Codes, qm.D, qm.Min, qm.Scale, ids, q)
}

// sqDistSQ8Generic is the portable asymmetric SQ8 kernel: dequantize in
// float32, then the same 4-lane float64 squared-difference accumulation as
// sqDistGeneric (with the same FMA-suppressing conversions).
func sqDistSQ8Generic(c []uint8, q, min, scale []float32) float64 {
	q = q[:len(c)]
	min = min[:len(c)]
	scale = scale[:len(c)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(c); i += 4 {
		v0 := min[i] + float32(scale[i]*float32(c[i]))
		v1 := min[i+1] + float32(scale[i+1]*float32(c[i+1]))
		v2 := min[i+2] + float32(scale[i+2]*float32(c[i+2]))
		v3 := min[i+3] + float32(scale[i+3]*float32(c[i+3]))
		d0 := float64(v0) - float64(q[i])
		d1 := float64(v1) - float64(q[i+1])
		d2 := float64(v2) - float64(q[i+2])
		d3 := float64(v3) - float64(q[i+3])
		s0 += float64(d0 * d0)
		s1 += float64(d1 * d1)
		s2 += float64(d2 * d2)
		s3 += float64(d3 * d3)
	}
	for ; i < len(c); i++ {
		v := min[i] + float32(scale[i]*float32(c[i]))
		d := float64(v) - float64(q[i])
		s0 += float64(d * d)
	}
	return (s0 + s1) + (s2 + s3)
}

func sqDistSQ8RowsGeneric(out []float64, codes []uint8, d int, min, scale []float32, ids []int32, q []float32) {
	for i, id := range ids {
		off := int(id) * d
		out[i] = sqDistSQ8Generic(codes[off:off+d:off+d], q, min, scale)
	}
}
