module bilsh

go 1.22
