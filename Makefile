# Standard entry points; `make check` is the gate CI and contributors run.

GO ?= go

.PHONY: check vet build test race fmt bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# Hot-path microbenchmarks (see docs/performance.md). Writes the raw
# `go test -json` stream to BENCH_query.json for before/after comparison.
bench:
	$(GO) test ./internal/core ./internal/vec -run '^$$' \
		-bench 'BenchmarkQueryModes|BenchmarkGather|BenchmarkRank|BenchmarkCandidateList|BenchmarkQueryBatchParallel|BenchmarkDot|BenchmarkSqDist' \
		-benchmem -count=1 -json > BENCH_query.json
	@echo "wrote BENCH_query.json"
