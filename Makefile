# Standard entry points; `make check` is the gate CI and contributors run.

GO ?= go

.PHONY: check vet build test race fmt

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .
