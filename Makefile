# Standard entry points; `make check` is the gate CI and contributors run.

GO ?= go

.PHONY: check vet build test race fmt quality quality-sq8 quality-adaptive bench bench-adaptive bench-concurrency durability shard outofcore linkcheck noasm dataset

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# Durability gate (see docs/durability.md): the out-of-process crash
# harness (SIGKILL a serving child under concurrent writes, restart,
# verify every acked write) plus a bounded fuzz pass over the WAL replay
# path's framing invariants.
durability:
	$(GO) test ./internal/durable ./internal/core -run 'Crash|Durable|WAL|Checkpoint|Atomic' -v -count=1
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s

# Quality-regression gate (see docs/testing.md): runs the full matrix —
# lattice × probe mode × partitioner × index lifecycle — against the
# committed golden thresholds in internal/quality/golden/ and writes the
# deterministic per-cell report. Two consecutive runs produce
# byte-identical BENCH_quality.json.
quality:
	$(GO) run ./cmd/bilsh quality -preset full -out BENCH_quality.json

# Same matrix over the SQ8 quantized row store (scan int8 codes, exact
# re-rank). Checked against the *same* golden thresholds as the float32
# run: quantization must fit inside the existing recall/error slack.
quality-sq8:
	$(GO) run ./cmd/bilsh quality -preset full -quantize sq8 -q

# Same matrix again, but every query runs under a TargetRecall=0.95
# execution plan (docs/adaptive.md): SLO-resolved table budgets must
# keep the committed golden thresholds green.
quality-adaptive:
	$(GO) run ./cmd/bilsh quality -preset full -target-recall 0.95 -q

# Real-dataset pipeline gate (see docs/datasets.md): exercises the
# *vecs file path end to end on the committed sift-micro fixture, fully
# offline — file inspection, a convert subset cut, a persisted Hamming
# build queried back with exact-truth recall, and the file-backed
# quality preset run twice with cmp proving byte-identical reports.
FIXTURE := internal/quality/testdata/sift-micro
dataset:
	$(GO) run ./cmd/bilsh dataset info -in $(FIXTURE)/base.fvecs
	$(GO) run ./cmd/bilsh dataset info -in $(FIXTURE)/truth.ivecs
	tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/bilsh dataset convert -in $(FIXTURE)/base.fvecs -out $$tmp/sub.fvecs -n 256 && \
	$(GO) run ./cmd/bilsh dataset info -in $$tmp/sub.fvecs && \
	$(GO) run ./cmd/bilsh build -data $(FIXTURE)/base.fvecs -out $$tmp/ham.bilsh \
		-metric hamming -bits 128 -probe multi -groups 4 && \
	$(GO) run ./cmd/bilsh query -index $$tmp/ham.bilsh -queries $(FIXTURE)/query.fvecs -k 10 -truth && \
	$(GO) run ./cmd/bilsh quality -preset fvecs -q -out $$tmp/q1.json && \
	$(GO) run ./cmd/bilsh quality -preset fvecs -q -out $$tmp/q2.json && \
	cmp $$tmp/q1.json $$tmp/q2.json && \
	rm -rf $$tmp

# Portable-kernel build: compiles out every assembly body (the same code
# path noasm-tagged builds and unsupported architectures run) and reruns
# the test suite against it.
noasm:
	$(GO) build -tags noasm ./...
	$(GO) test -tags noasm ./internal/vec ./internal/core

# Sharded-serving benchmark (see docs/sharding.md): builds an in-process
# 4-shard cluster (leaf-aware shard map, id maps, HTTP shard servers +
# router) and a single-node server over the same data, drives identical
# queries through both, and writes q/s, p50/p99 latency, recall and mean
# shard fan-out to BENCH_shard.json.
shard:
	$(GO) run ./cmd/bilsh shard-bench -out BENCH_shard.json

# Out-of-core gate (see docs/outofcore.md): mapped-vs-heap byte
# identity and the ≤2-alloc pin, CRC rejection of damaged files at
# open, v2 backcompat, the -race snapshot-swap stress, a bounded fuzz
# pass over the paged-layout reader, and the resident-set benchmark
# (heap vs mapped at uncapped, 1/4 and 1/16 budgets) into
# BENCH_outofcore.json — which fails unless every mapped side returns
# results identical to the heap baseline.
outofcore:
	$(GO) test ./internal/core -run 'Mapped|DiskLayout|DiskV2|Residency|DurableMmap|DiskIndex' -count=1
	$(GO) test -race ./internal/core -run 'TestMappedSwapUnderLoad|TestDurableMmap' -count=1
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDiskLayout -fuzztime 30s
	$(GO) run ./cmd/bilsh outofcore-bench -out BENCH_outofcore.json

# Documentation link check: every relative link and #anchor in every
# markdown file must resolve (internal/doccheck; external URLs are not
# fetched).
linkcheck:
	$(GO) test ./internal/doccheck -run TestRepoDocLinks -count=1

# Hot-path microbenchmarks (see docs/performance.md). Writes the raw
# `go test -json` stream to BENCH_query.json for before/after comparison.
# The BenchmarkSqDistToRows/BenchmarkSqDistToRowsSQ8 sweeps run every
# registered kernel (SIMD and portable) and both row stores (float32 and
# SQ8), so one file holds the kernel-on/off and float-vs-quantized deltas.
bench:
	$(GO) test ./internal/core ./internal/vec -run '^$$' \
		-bench 'BenchmarkQueryModes|BenchmarkGather|BenchmarkRank|BenchmarkCandidateList|BenchmarkQueryBatchParallel|BenchmarkDot|BenchmarkSqDist' \
		-benchmem -count=1 -json > BENCH_query.json
	@echo "wrote BENCH_query.json"

# Adaptive-plan benchmark (see docs/adaptive.md): fixed-budget vs
# adaptive plan (recall SLO + plateau termination + tuner-style
# max-candidates cap + deeper re-rank) over a heterogeneous SQ8
# workload. Fails unless adaptive p99 is lower at equal-or-better
# measured recall; writes both sides to BENCH_adaptive.json.
bench-adaptive:
	$(GO) run ./cmd/bilsh adaptive-bench -out BENCH_adaptive.json

# Concurrency benchmarks: per-op latency under mixed read/write load on the
# snapshot-based index, plus the global-RWMutex baseline it replaced (see
# docs/performance.md and docs/concurrency.md).
bench-concurrency:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'BenchmarkMixedReadWrite|BenchmarkRWMutexMixedReadWrite' \
		-benchmem -count=1 -json > BENCH_concurrency.json
	@echo "wrote BENCH_concurrency.json"
