// Package bilsh is a from-scratch Go reproduction of "Bi-level Locality
// Sensitive Hashing for k-Nearest Neighbor Computation" (Jia Pan and
// Dinesh Manocha, ICDE 2012).
//
// The root package holds the repository-level benchmark harness
// (bench_test.go), with one benchmark per figure of the paper's
// evaluation. The implementation lives under internal/:
//
//	internal/core        Bi-level LSH index (the paper's contribution)
//	internal/rptree      level 1: random projection trees (max/mean rules)
//	internal/kmeans      level 1 baseline: K-means (Fig. 13c)
//	internal/lshfunc     p-stable hash function families (Eq. 2)
//	internal/lattice     Z^M and E8 quantizers, ancestors (Eqs. 7-10)
//	internal/morton      Morton curves for the Z^M bucket hierarchy
//	internal/hierarchy   hierarchical LSH tables (Morton + E8 tree)
//	internal/multiprobe  Lv et al. probing (Z^M) and 240-neighbor (E8)
//	internal/lshtable    bucket store (sorted linear array + cuckoo index)
//	internal/cuckoo      cuckoo hash table (GPU-layout index)
//	internal/tuner       per-cluster bucket-width estimation
//	internal/shortlist   short-list search engines (serial/parallel/queue)
//	internal/parsim      GPU cost model (the Figure 4 substitution)
//	internal/knn         exact ground truth + recall/error/selectivity
//	internal/diameter    approximate set diameter (Egecioglu-Kalantari)
//	internal/dataset     synthetic GIST-stand-in workloads + fvecs I/O
//	internal/experiments figure-by-figure harnesses
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package bilsh
