// Repository-level benchmarks: one per figure of the paper's evaluation
// section, regenerating the figure's series. Each benchmark iteration runs
// the figure's full harness (index builds, query sweeps, metric
// aggregation), so iterations are expensive and `go test -bench` typically
// runs each once.
//
// Scale: benchmarks default to a trimmed laptop configuration (the "bench"
// scale below) so the full suite finishes in minutes on one core. Set
// BILSH_BENCH_SCALE=default for the larger harness scale, or =tiny for a
// smoke run. Set BILSH_BENCH_PRINT=1 to print each figure's table to
// stdout (this is how EXPERIMENTS.md's measured tables were produced).
package bilsh

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/experiments"
	"bilsh/internal/xrand"
)

// benchConfig sizes the benchmark workload.
func benchConfig() experiments.Config {
	switch os.Getenv("BILSH_BENCH_SCALE") {
	case "default":
		return experiments.Default()
	case "tiny":
		return experiments.Tiny()
	default:
		return experiments.Config{
			N: 4000, Queries: 300, D: 64, K: 20, M: 8, Groups: 16,
			Clusters: 32,
			Reps:     2,
			WScales:  []float64{0.15, 0.3, 0.5, 0.8, 1.3, 2.0},
			Ls:       []int{5, 10},
			Seed:     3,
		}
	}
}

var (
	benchWLOnce sync.Once
	benchWL     *experiments.Workload
	benchWLErr  error
)

// benchWorkload builds the shared workload (data + exact ground truth)
// once per process.
func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchWLOnce.Do(func() {
		benchWL, benchWLErr = experiments.NewWorkload(benchConfig())
	})
	if benchWLErr != nil {
		b.Fatal(benchWLErr)
	}
	return benchWL
}

// reportFigure attaches headline metrics and optionally prints the table.
func reportFigure(b *testing.B, res experiments.FigureResult) {
	b.Helper()
	if len(res.Series) >= 2 {
		// First and last series are conventionally baseline and
		// strongest variant; report recall at a shared low selectivity.
		const tau = 0.02
		if r, ok := res.Series[0].InterpolateRecallAt(tau); ok {
			b.ReportMetric(r, "recall@τ0.02_first")
		}
		if r, ok := res.Series[len(res.Series)-1].InterpolateRecallAt(tau); ok {
			b.ReportMetric(r, "recall@τ0.02_last")
		}
	}
	if os.Getenv("BILSH_BENCH_PRINT") != "" {
		if err := res.WriteTable(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

// runFigureBench is the shared body for every series-producing figure.
func runFigureBench(b *testing.B, run func(*experiments.Workload) (experiments.FigureResult, error)) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.StopTimer()
			reportFigure(b, res)
			b.StartTimer()
		}
	}
}

// BenchmarkFig04ShortList regenerates Figure 4: short-list search time of
// the CPU, GPU-hash+CPU and pure-GPU pipelines (modeled via parsim)
// against candidate volume.
func BenchmarkFig04ShortList(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.StopTimer()
			last := res.Points[len(res.Points)-1]
			hash, gpu, queued := last.Row.Speedups()
			b.ReportMetric(hash, "x_hash_offload")
			b.ReportMetric(gpu, "x_pure_gpu")
			b.ReportMetric(queued, "x_work_queue")
			if os.Getenv("BILSH_BENCH_PRINT") != "" {
				if err := res.WriteTable(os.Stdout); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFig05StdVsBiZM regenerates Figure 5: standard vs Bi-level LSH
// on the Z^M lattice (selectivity -> recall/error with projection
// deviations, across L).
func BenchmarkFig05StdVsBiZM(b *testing.B) { runFigureBench(b, experiments.Figure5) }

// BenchmarkFig06StdVsBiE8 regenerates Figure 6 (E8 lattice).
func BenchmarkFig06StdVsBiE8(b *testing.B) { runFigureBench(b, experiments.Figure6) }

// BenchmarkFig07MultiprobeZM regenerates Figure 7 (multiprobe, Z^M).
func BenchmarkFig07MultiprobeZM(b *testing.B) { runFigureBench(b, experiments.Figure7) }

// BenchmarkFig08MultiprobeE8 regenerates Figure 8 (multiprobe, E8).
func BenchmarkFig08MultiprobeE8(b *testing.B) { runFigureBench(b, experiments.Figure8) }

// BenchmarkFig09HierZM regenerates Figure 9 (hierarchical, Z^M).
func BenchmarkFig09HierZM(b *testing.B) { runFigureBench(b, experiments.Figure9) }

// BenchmarkFig10HierE8 regenerates Figure 10 (hierarchical, E8).
func BenchmarkFig10HierE8(b *testing.B) { runFigureBench(b, experiments.Figure10) }

// BenchmarkFig11AllZM regenerates Figure 11: all six methods on Z^M with
// query-induced deviations.
func BenchmarkFig11AllZM(b *testing.B) { runFigureBench(b, experiments.Figure11) }

// BenchmarkFig12AllE8 regenerates Figure 12 (all six methods, E8).
func BenchmarkFig12AllE8(b *testing.B) { runFigureBench(b, experiments.Figure12) }

// BenchmarkFig13aGroups regenerates Figure 13(a): quality vs number of
// level-1 groups.
func BenchmarkFig13aGroups(b *testing.B) {
	runFigureBench(b, func(w *experiments.Workload) (experiments.FigureResult, error) {
		return experiments.Figure13a(w, []int{1, 8, 16, 32})
	})
}

// BenchmarkFig13bM regenerates Figure 13(b): Bi-level vs standard across
// hash lengths M.
func BenchmarkFig13bM(b *testing.B) {
	runFigureBench(b, func(w *experiments.Workload) (experiments.FigureResult, error) {
		return experiments.Figure13b(w, []int{4, 8, 10})
	})
}

// BenchmarkFig13cPartitioner regenerates Figure 13(c): RP-tree vs K-means
// as the level-1 partitioner.
func BenchmarkFig13cPartitioner(b *testing.B) { runFigureBench(b, experiments.Figure13c) }

// BenchmarkRPRule is the extension ablation of the Section IV-A2 claim
// that the mean split rule beats the max rule.
func BenchmarkRPRule(b *testing.B) { runFigureBench(b, experiments.RPRuleComparison) }

// BenchmarkTunerAblation isolates the per-group parameter tuning benefit
// (Section IV-B).
func BenchmarkTunerAblation(b *testing.B) { runFigureBench(b, experiments.TunerAblation) }

// BenchmarkLatticeCmp is the quantizer density ablation (Z^M vs D_n vs E8).
func BenchmarkLatticeCmp(b *testing.B) { runFigureBench(b, experiments.LatticeComparison) }

// BenchmarkGroupRouting measures the level-1 routing recall ceiling.
func BenchmarkGroupRouting(b *testing.B) { runFigureBench(b, experiments.GroupRouting) }

// BenchmarkBuild measures raw index construction throughput for the main
// configurations (not a paper figure; an engineering baseline).
func BenchmarkBuild(b *testing.B) {
	w := benchWorkload(b)
	for _, m := range []experiments.Method{
		experiments.StandardLSH(0, 0, w.Cfg.M, 10),
		experiments.BiLevelLSH(0, 0, w.Cfg.M, 10, w.Cfg.Groups),
	} {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := buildForBench(w, m, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuery measures per-query latency of the built index.
func BenchmarkQuery(b *testing.B) {
	w := benchWorkload(b)
	m := experiments.BiLevelLSH(0, 0, w.Cfg.M, 10, w.Cfg.Groups)
	ix, err := buildForBench(w, m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(w.Queries.Row(i%w.Queries.N), w.Cfg.K)
	}
}

// buildForBench constructs one index for a method at the bench workload's
// parameters.
func buildForBench(w *experiments.Workload, m experiments.Method, seed int64) (*core.Index, error) {
	opts := m.Opts
	opts.Params.L = 10
	opts.Params.W = 1
	opts.TuneK = w.Cfg.K
	if opts.Groups == 0 {
		opts.Groups = w.Cfg.Groups
	}
	ix, err := core.Build(w.Train, opts, xrand.New(1_000_000+seed))
	if err != nil {
		return nil, fmt.Errorf("bench build %s: %w", m.Name, err)
	}
	return ix, nil
}
