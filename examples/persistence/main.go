// Persistence: build an index once, save it in both layouts, and serve
// queries from the disk-backed (out-of-core) form — the deployment shape
// the paper names as future work for >RAM datasets.
//
// The example also exercises the dynamic-update path: insert new vectors
// into the loaded index, delete a few, then Compact and re-save.
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func main() {
	dir, err := os.MkdirTemp("", "bilsh-persist-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rng := xrand.New(99)

	// Build once.
	spec := dataset.DefaultClusteredSpec(6000, 64)
	data, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		log.Fatal(err)
	}
	ix, err := core.Build(data, core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      16,
		AutoTuneW:   true,
		Params:      lshfunc.Params{M: 8, L: 10, W: 1},
	}, rng.Split(2))
	if err != nil {
		log.Fatal(err)
	}

	// Save in both layouts.
	selfPath := filepath.Join(dir, "index.bilsh")
	diskPath := filepath.Join(dir, "index.disk")
	f, err := os.Create(selfPath)
	if err != nil {
		log.Fatal(err)
	}
	selfBytes, err := ix.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if err := ix.SaveDisk(diskPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved self-contained index: %.1f MiB\n", float64(selfBytes)/(1<<20))

	// Serve from the disk-backed layout: metadata in memory, vectors on
	// disk, fetched per candidate.
	di, err := core.OpenDisk(diskPath)
	if err != nil {
		log.Fatal(err)
	}
	defer di.Close()

	q := data.Row(42)
	start := time.Now()
	res, st := di.Query(q, 5)
	fmt.Printf("disk query in %v: ids=%v (scanned %d candidates)\n",
		time.Since(start).Round(time.Microsecond), res.IDs, st.Candidates)
	if res.IDs[0] != 42 {
		log.Fatalf("stored row should be its own nearest neighbor, got %v", res.IDs)
	}

	// Dynamic updates on the served index.
	nv := vec.Clone(data.Row(7))
	nv[0] += 0.002
	newID, err := di.Insert(nv)
	if err != nil {
		log.Fatal(err)
	}
	di.Delete(13)
	res, _ = di.Query(nv, 1)
	fmt.Printf("after insert+delete: new vector %d found=%v, live items=%d\n",
		newID, len(res.IDs) > 0 && res.IDs[0] == newID, di.Len())

	// Fold updates and re-save.
	if _, err := di.Compact(); err != nil {
		log.Fatal(err)
	}
	if err := di.SaveDisk(filepath.Join(dir, "index-v2.disk")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted to %d items and re-saved\n", di.Len())
}
