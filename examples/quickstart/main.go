// Quickstart: build a Bi-level LSH index over a synthetic dataset, answer
// a few k-NN queries, and compare against brute force.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

func main() {
	rng := xrand.New(42)

	// 1. A dataset: 5000 GIST-like vectors in 64 dimensions, plus 5 held
	//    out queries (the paper's protocol: query with items from the same
	//    collection that were not indexed).
	spec := dataset.DefaultClusteredSpec(5005, 64)
	data, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		log.Fatal(err)
	}
	train, queries := dataset.Split(data, 5, rng.Split(2))

	// 2. Build the index: RP-tree first level with 16 groups, then 10
	//    hash tables of 8 p-stable functions per group, with the bucket
	//    width tuned per group.
	ix, err := core.Build(train, core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      16,
		Lattice:     core.LatticeZM,
		AutoTuneW:   true,
		Params:      lshfunc.Params{M: 8, L: 10, W: 1},
	}, rng.Split(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors (dim %d) in %d groups\n\n", ix.N(), ix.Dim(), ix.NumGroups())

	// 3. Query and compare with exact brute force.
	const k = 10
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		approx, st := ix.Query(q, k)
		exact := knn.Exact(train, q, k)
		fmt.Printf("query %d: recall=%.2f error-ratio=%.3f selectivity=%.4f (group %d, %d candidates)\n",
			qi,
			knn.Recall(exact.IDs, approx.IDs),
			knn.ErrorRatio(exact.Dists, approx.Dists),
			knn.Selectivity(st.Candidates, train.N),
			st.Group, st.Candidates)
		fmt.Printf("  approx ids: %v\n  exact ids:  %v\n", approx.IDs, exact.IDs)
	}
}
