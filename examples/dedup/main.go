// Dedup: near-duplicate detection over a feature corpus — a standard
// LSH workload (the paper cites WWW-scale similarity search as a driving
// application). The corpus contains planted near-duplicate pairs (slightly
// perturbed copies); the example finds them with Bi-level LSH k-NN queries
// plus a distance threshold, and reports precision/recall of pair
// discovery against the plant list.
//
// Run with:
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

const (
	baseDocs   = 6000
	duplicates = 400
	dim        = 96
)

func main() {
	rng := xrand.New(23)

	// Base corpus.
	spec := dataset.DefaultClusteredSpec(baseDocs, dim)
	base, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		log.Fatal(err)
	}

	// Plant near-duplicates: copies of random documents with tiny noise.
	rows := make([][]float32, 0, baseDocs+duplicates)
	for i := 0; i < base.N; i++ {
		rows = append(rows, vec.Clone(base.Row(i)))
	}
	type pair struct{ a, b int }
	planted := make(map[pair]bool, duplicates)
	prng := rng.Split(2)
	for i := 0; i < duplicates; i++ {
		src := prng.Intn(baseDocs)
		dup := vec.Clone(base.Row(src))
		for j := range dup {
			dup[j] += float32(prng.NormFloat64() * 0.01)
		}
		rows = append(rows, dup)
		planted[pair{src, baseDocs + i}] = true
	}
	corpus := vec.FromRows(rows)

	// Duplicate distance scale: measure the planted pairs to set the
	// detection threshold (a deployment would calibrate it the same way
	// from labeled duplicates).
	var dupDist float64
	for p := range planted {
		dupDist += vec.Dist(corpus.Row(p.a), corpus.Row(p.b))
	}
	dupDist /= float64(len(planted))
	threshold := 3 * dupDist

	fmt.Printf("corpus: %d documents (%d planted near-duplicate pairs), dim %d\n",
		corpus.N, duplicates, dim)
	fmt.Printf("mean duplicate distance %.4f, detection threshold %.4f\n\n", dupDist, threshold)

	ix, err := core.Build(corpus, core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      16,
		AutoTuneW:   true,
		TuneK:       4,
		Params:      lshfunc.Params{M: 8, L: 8, W: 0.5},
	}, rng.Split(3))
	if err != nil {
		log.Fatal(err)
	}

	// Every document queries for its 2 nearest non-identical neighbors;
	// pairs under the threshold are reported as duplicates.
	found := make(map[pair]bool)
	var scanned int
	for i := 0; i < corpus.N; i++ {
		res, st := ix.Query(corpus.Row(i), 3)
		scanned += st.Candidates
		for r, id := range res.IDs {
			if id == i {
				continue
			}
			if math.Sqrt(res.Dists[r]) <= threshold {
				p := pair{id, i}
				if id > i {
					p = pair{i, id}
				}
				found[p] = true
			}
		}
	}

	tp := 0
	for p := range found {
		if planted[p] {
			tp++
		}
	}
	precision := float64(tp) / math.Max(1, float64(len(found)))
	recall := float64(tp) / float64(len(planted))
	fmt.Printf("reported pairs:   %d\n", len(found))
	fmt.Printf("pair recall:      %.3f (%d of %d planted pairs found)\n", recall, tp, len(planted))
	fmt.Printf("pair precision:   %.3f\n", precision)
	fmt.Printf("work: scanned %.2f%% of all candidate comparisons\n",
		100*float64(scanned)/(float64(corpus.N)*float64(corpus.N)))
	if recall < 0.8 {
		fmt.Println("note: raise L or W for higher duplicate recall")
	}
}
