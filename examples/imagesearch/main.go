// Imagesearch: content-based image retrieval, the paper's motivating
// application. A corpus of synthetic GIST-like descriptors (clusters =
// recurring scene types) is indexed once; the example then compares four
// retrieval configurations — standard LSH, multiprobe standard, Bi-level,
// and hierarchical Bi-level — at the quality/selectivity trade-off, and
// prints a small "search session" for one query image.
//
// Run with:
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

func main() {
	rng := xrand.New(7)

	// A photo collection: 8000 images as 128-dim GIST-like descriptors
	// drawn from 32 scene types of varying visual tightness, with 200
	// held-out query photos.
	spec := dataset.DefaultClusteredSpec(8200, 128)
	data, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		log.Fatal(err)
	}
	corpus, queries := dataset.Split(data, 200, rng.Split(2))

	const k = 20
	fmt.Printf("corpus: %d images, dim %d; %d query images, k=%d\n\n",
		corpus.N, corpus.D, queries.N, k)
	truth := knn.ExactAll(corpus, queries, k)

	configs := []struct {
		name string
		opts core.Options
	}{
		{"standard LSH", core.Options{
			Partitioner: core.PartitionNone, AutoTuneW: true,
			Params: lshfunc.Params{M: 8, L: 10, W: 1}}},
		{"multiprobe standard LSH", core.Options{
			Partitioner: core.PartitionNone, AutoTuneW: true,
			ProbeMode: core.ProbeMulti, Probes: 40,
			Params: lshfunc.Params{M: 8, L: 10, W: 0.6}}},
		{"Bi-level LSH", core.Options{
			Partitioner: core.PartitionRPTree, Groups: 16, AutoTuneW: true,
			Params: lshfunc.Params{M: 8, L: 10, W: 1}}},
		{"hierarchical Bi-level LSH", core.Options{
			Partitioner: core.PartitionRPTree, Groups: 16, AutoTuneW: true,
			ProbeMode: core.ProbeHierarchy,
			Params:    lshfunc.Params{M: 8, L: 10, W: 1}}},
	}

	fmt.Printf("%-28s %10s %10s %10s %12s %12s\n",
		"method", "recall", "error", "select.", "build", "query/img")
	var bilevel *core.Index
	for i, c := range configs {
		start := time.Now()
		ix, err := core.Build(corpus, c.opts, rng.Split(int64(10+i)))
		if err != nil {
			log.Fatal(err)
		}
		buildDur := time.Since(start)

		start = time.Now()
		results, stats := ix.QueryBatch(queries, k)
		queryDur := time.Since(start)

		var recall, errRatio, sel float64
		for qi := range results {
			recall += knn.Recall(truth[qi].IDs, results[qi].IDs)
			errRatio += knn.ErrorRatio(truth[qi].Dists, results[qi].Dists)
			sel += knn.Selectivity(stats[qi].Candidates, corpus.N)
		}
		n := float64(queries.N)
		fmt.Printf("%-28s %10.3f %10.3f %10.4f %12v %12v\n",
			c.name, recall/n, errRatio/n, sel/n,
			buildDur.Round(time.Millisecond),
			(queryDur / time.Duration(queries.N)).Round(time.Microsecond))
		if c.name == "Bi-level LSH" {
			bilevel = ix
		}
	}

	// A search session: show one query's nearest images with distances.
	fmt.Println("\nsample search (Bi-level LSH):")
	q := queries.Row(0)
	res, st := bilevel.Query(q, 5)
	fmt.Printf("query image 0 routed to scene group %d; scanned %d candidates\n",
		st.Group, st.Candidates)
	for rank, id := range res.IDs {
		fmt.Printf("  #%d image %5d  distance %.3f\n", rank+1, id, res.Dists[rank])
	}
}
