// Motionplanning: probabilistic-roadmap construction, the application the
// authors' earlier GPU LSH work targeted (Pan et al., IROS 2010). A PRM
// samples robot configurations and connects each to its k nearest
// neighbors; the k-NN step dominates roadmap construction time, and
// approximate neighbors are acceptable because the local planner rejects
// invalid edges anyway.
//
// This example samples configurations of a 12-DOF articulated robot
// (joint angles live on low-dimensional constraint manifolds, which is
// exactly the structure RP-trees exploit), builds the roadmap's k-NN
// graph with Bi-level LSH and with brute force, and compares graph
// quality and edge agreement.
//
// Run with:
//
//	go run ./examples/motionplanning
package main

import (
	"fmt"
	"log"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

const (
	dof       = 12
	samples   = 4000
	neighbors = 8
)

func main() {
	rng := xrand.New(11)

	// Sampled configurations: free-space regions form clusters on low-dim
	// manifolds (e.g. "arm above the table", "arm through the window").
	spec := dataset.ClusteredSpec{
		N: samples, D: dof, Clusters: 10, IntrinsicDim: 4,
		Aspect: 4, NoiseSigma: 0.02, Spread: 3, PowerLaw: 0.3, ScaleSpread: 2,
	}
	configs, regions, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRM: %d sampled configurations, %d DOF, k=%d\n\n", samples, dof, neighbors)

	// Roadmap edges via Bi-level LSH.
	start := time.Now()
	ix, err := core.Build(configs, core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      10,
		AutoTuneW:   true,
		Params:      lshfunc.Params{M: 8, L: 8, W: 1.2},
	}, rng.Split(2))
	if err != nil {
		log.Fatal(err)
	}
	approxEdges := make([][]int, samples)
	var scanned int
	for i := 0; i < samples; i++ {
		res, st := ix.Query(configs.Row(i), neighbors+1) // +1: self
		approxEdges[i] = dropSelf(res.IDs, i, neighbors)
		scanned += st.Candidates
	}
	lshDur := time.Since(start)

	// Reference edges via brute force.
	start = time.Now()
	exact := knn.ExactAll(configs, configs, neighbors+1)
	exactEdges := make([][]int, samples)
	for i := range exactEdges {
		exactEdges[i] = dropSelf(exact[i].IDs, i, neighbors)
	}
	bruteDur := time.Since(start)

	// Graph agreement and quality.
	var common, total int
	var approxLen, exactLen float64
	for i := 0; i < samples; i++ {
		set := map[int]bool{}
		for _, j := range exactEdges[i] {
			set[j] = true
			exactLen += vec.Dist(configs.Row(i), configs.Row(j))
		}
		for _, j := range approxEdges[i] {
			if set[j] {
				common++
			}
			approxLen += vec.Dist(configs.Row(i), configs.Row(j))
		}
		total += len(exactEdges[i])
	}
	fmt.Printf("roadmap edge recall:    %.3f (%d of %d exact edges found)\n",
		float64(common)/float64(total), common, total)
	fmt.Printf("mean edge length ratio: %.3f (exact/approx; 1.0 = identical quality)\n",
		exactLen/approxLen)
	fmt.Printf("configs scanned:        %.1f%% of all pairs\n",
		100*float64(scanned)/float64(samples)/float64(samples))
	fmt.Printf("k-NN graph time:        %v (LSH) vs %v (brute force)\n\n", lshDur.Round(time.Millisecond), bruteDur.Round(time.Millisecond))

	// How well does level 1 recover the free-space regions? Strong
	// alignment means the roadmap's neighbor searches stay within one
	// region, which is what keeps edges valid for the local planner.
	counts := make(map[[2]int]int)
	for i := 0; i < samples; i++ {
		counts[[2]int{ix.GroupOf(configs.Row(i)), regions[i]}]++
	}
	pure := 0
	for g := 0; g < ix.NumGroups(); g++ {
		best := 0
		for r := 0; r < spec.Clusters; r++ {
			if c := counts[[2]int{g, r}]; c > best {
				best = c
			}
		}
		pure += best
	}
	fmt.Printf("level-1 partition purity vs free-space regions: %.3f\n",
		float64(pure)/float64(samples))
}

// dropSelf removes index self from ids and truncates to k entries.
func dropSelf(ids []int, self, k int) []int {
	out := make([]int, 0, k)
	for _, id := range ids {
		if id == self {
			continue
		}
		out = append(out, id)
		if len(out) == k {
			break
		}
	}
	return out
}
